"""Command-line interface: profile, predict, simulate, sweep, search,
validate, dvfs.

Mirrors the released AIP/PMT workflow: ``profile`` writes a reusable
profile file; ``predict`` evaluates the analytical model against it for a
named or custom configuration; ``simulate`` runs the cycle-level
reference; ``sweep`` explores a design space and reports the Pareto
frontier; ``search`` runs a guided (random / hill / simulated-annealing
/ genetic) optimizer over a declarative design space under an
evaluation budget; ``validate`` runs model and simulator over the same
grid and reports the thesis §7.4/§7.5 accuracy metrics; ``dvfs``
explores DVFS operating points and the ED²P optimum.

Examples::

    python -m repro.cli workloads
    python -m repro.cli profile gcc --instructions 50000 -o gcc.profile
    python -m repro.cli profile gcc mcf lbm --store .profile-cache \\
        --json profiles.json
    python -m repro.cli predict gcc.profile
    python -m repro.cli predict gcc.profile --width 2 --rob 64 --llc-mb 2
    python -m repro.cli simulate gcc --instructions 50000
    python -m repro.cli sweep gcc.profile
    python -m repro.cli sweep gcc.profile mcf.profile \\
        --workers 4 --cache .profile-cache --objective edp
    python -m repro.cli search gcc.profile --optimizer ga \\
        --budget 200 --objective edp --seed 0
    python -m repro.cli search gcc.profile --space space.json \\
        --optimizer sa --budget 500 --trajectory out.json
    python -m repro.cli validate gcc mcf --limit 64 --workers 4 \\
        --json report.json
    python -m repro.cli dvfs gcc.profile --power-cap 12
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from typing import List, Optional

from repro.caches.cache import CacheConfig
from repro.core import AnalyticalModel, nehalem
from repro.core.machine import DVFSPoint, MachineConfig, dvfs_vdd
from repro.explore.dse import best_average_config
from repro.explore.dvfs import (
    best_under_power_cap,
    config_at,
    explore_dvfs,
    optimal_ed2p,
)
from repro.explore.engine import SweepEngine
from repro.explore.pareto import StreamingParetoFront
from repro.explore.validate import ValidationCampaign
from repro.explore.search import (
    OBJECTIVES,
    OPTIMIZERS,
    SearchProblem,
    get_objective,
    make_optimizer,
)
from repro.explore.space import DesignSpace
from repro.profiler import SamplingConfig, profile_application
from repro.profiler.serialization import (
    ProfileStore,
    load_profile,
    save_profile,
)
from repro.simulator import simulate
from repro.workloads import generate_trace, make_workload, workload_names


def _config_from_args(args: argparse.Namespace) -> MachineConfig:
    """Build a configuration from the reference core + CLI overrides."""
    config = nehalem()
    if args.width is not None:
        config = replace(config, dispatch_width=args.width)
    if args.rob is not None:
        config = replace(config, rob_size=args.rob)
    if args.llc_mb is not None:
        config = replace(
            config,
            llc=CacheConfig(args.llc_mb << 20, 16, 64, latency=30),
        )
    if args.frequency is not None:
        config = config.with_frequency(args.frequency)
    if args.prefetch:
        config = replace(config, prefetch=True)
    return config


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=None,
                        help="dispatch width override")
    parser.add_argument("--rob", type=int, default=None,
                        help="ROB size override")
    parser.add_argument("--llc-mb", type=int, default=None,
                        help="LLC size in MB")
    parser.add_argument("--frequency", type=float, default=None,
                        help="clock frequency in GHz")
    parser.add_argument("--prefetch", action="store_true",
                        help="enable the stride prefetcher")


def cmd_workloads(args: argparse.Namespace) -> int:
    for name in workload_names():
        print(name)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    duplicates = _duplicate_names(args.workloads)
    if duplicates:
        print("error: duplicate workload name(s): "
              + ", ".join(duplicates)
              + " (profiles are keyed by workload name; duplicates "
              "would silently collide)", file=sys.stderr)
        return 2
    if args.output is None and args.store is None:
        print("error: need -o/--output and/or --store", file=sys.stderr)
        return 2
    if args.output is not None and len(args.workloads) > 1:
        print("error: -o/--output profiles exactly one workload; use "
              "--store for batches", file=sys.stderr)
        return 2
    store = ProfileStore(args.store) if args.store else None
    sampling = SamplingConfig(
        args.micro_trace,
        args.window,
        reuse_sample_rate=args.reuse_sample_rate,
        reuse_seed=args.reuse_seed,
    )
    entries = []
    for name in args.workloads:
        started = time.perf_counter()
        trace = generate_trace(
            make_workload(name, seed=args.seed),
            max_instructions=args.instructions,
        )
        profile = profile_application(trace, sampling)
        key = None
        if store is not None:
            # put() + warm(): the profile and its StatStack tables land
            # on disk, so later sweep/search/validate runs start warm.
            key = store.warm(profile)
        if args.output:
            save_profile(profile, args.output)
        seconds = time.perf_counter() - started
        destinations = [d for d in (
            args.output,
            f"store:{key[:12]}" if key else None,
        ) if d]
        print(f"profiled {profile.num_instructions} instructions of "
              f"{profile.name} ({len(profile.micro_traces)} "
              f"micro-traces) -> {', '.join(destinations)}")
        entries.append({
            "workload": name,
            "instructions": profile.num_instructions,
            "micro_traces": len(profile.micro_traces),
            "fingerprint": key,
            "output": args.output,
            "seconds": round(seconds, 6),
        })
    if args.json:
        report = {
            "store": args.store,
            "sampling": {
                "micro_trace_length": sampling.micro_trace_length,
                "window_length": sampling.window_length,
                "reuse_sample_rate": sampling.reuse_sample_rate,
                "reuse_seed": sampling.reuse_seed,
            },
            "trace_seed": args.seed,
            "profiles": entries,
        }
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report -> {args.json}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    profile = load_profile(args.profile)
    config = _config_from_args(args)
    model = AnalyticalModel(mlp_model=args.mlp_model)
    result = model.predict(profile, config)
    print(f"workload:  {profile.name}")
    print(f"config:    {config.name}")
    print(f"CPI:       {result.cpi:.3f}   (IPC {1 / result.cpi:.3f})")
    print(f"time:      {result.seconds * 1e3:.3f} ms")
    print(f"power:     {result.power_watts:.2f} W "
          f"(static {result.power.static_total:.2f} W)")
    print(f"energy:    {result.energy_joules * 1e3:.3f} mJ   "
          f"EDP {result.edp:.3e}   ED2P {result.ed2p:.3e}")
    print("CPI stack: " + "  ".join(
        f"{key}={value:.3f}" for key, value in result.cpi_stack().items()
    ))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    trace = generate_trace(
        make_workload(args.workload, seed=args.seed),
        max_instructions=args.instructions,
    )
    config = _config_from_args(args)
    result = simulate(trace, config)
    print(f"workload:  {trace.name}")
    print(f"config:    {config.name}")
    print(f"cycles:    {result.cycles:.0f}")
    print(f"CPI:       {result.cpi:.3f}")
    print(f"branches:  {result.branches} "
          f"({result.branch_mispredictions} mispredicted)")
    print(f"MPKI:      " + "/".join(f"{m:.1f}" for m in result.mpki))
    print("CPI stack: " + "  ".join(
        f"{key}={value:.3f}" for key, value in result.cpi_stack().items()
    ))
    return 0


def _load_space(path: Optional[str]) -> DesignSpace:
    """The declarative space from a JSON file, or the Table 6.3 grid."""
    if path:
        return DesignSpace.load(path)
    return DesignSpace.default()


def _duplicate_names(names: List[str]) -> List[str]:
    """Names appearing more than once (results are keyed on them)."""
    return sorted({name for name in names if names.count(name) > 1})


def _limited_configs(space, limit: Optional[int]):
    """The space's config list truncated to ``limit``, or ``None`` on a
    negative limit (the caller reports the error)."""
    configs = space.configs()
    if limit is None:
        return configs
    if limit < 0:
        return None
    return configs[:limit]


def cmd_sweep(args: argparse.Namespace) -> int:
    profiles = [load_profile(path) for path in args.profiles]
    duplicates = _duplicate_names([p.name for p in profiles])
    if duplicates:
        print("error: duplicate profile name(s): "
              + ", ".join(duplicates)
              + " (results are keyed by workload name; profiles would "
              "silently merge)", file=sys.stderr)
        return 2
    space = _load_space(args.space)
    configs = _limited_configs(space, args.limit)
    if configs is None:
        print("error: --limit must be >= 0", file=sys.stderr)
        return 2
    store = ProfileStore(args.cache) if args.cache else None
    engine = SweepEngine(workers=args.workers, store=store)

    # Stream the sweep: Pareto frontiers fold incrementally per
    # workload, so partial results are usable the moment they arrive.
    frontiers = {p.name: StreamingParetoFront() for p in profiles}
    results = {p.name: [] for p in profiles}
    for point in engine.iter_sweep(profiles, configs):
        results[point.workload].append(point)
        frontiers[point.workload].add_point(point)

    for profile in profiles:
        points = results[profile.name]
        frontier = frontiers[profile.name].frontier()
        print(f"{profile.name}: {len(points)} designs evaluated; "
              f"{len(frontier)} Pareto-optimal:")
        for _, _, point in frontier:
            print(f"  {point.config.name:<32s} "
                  f"{point.seconds * 1e6:9.1f} us "
                  f"{point.power_watts:7.2f} W  CPI {point.cpi:5.2f}")
    if not configs:
        return 0
    if args.objective:
        objective = get_objective(args.objective)
        best = best_average_config(results, metric=objective.metric)
        print(f"best average config ({objective.name}): {best}")
    elif len(profiles) > 1:
        # Historical default: rank by average CPI.
        print(f"best average config: {best_average_config(results)}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    # Argument-only validation first, before any profile I/O.
    kwargs = {}
    if args.population is not None:
        if args.optimizer != "ga":
            print("error: --population only applies to --optimizer ga",
                  file=sys.stderr)
            return 2
        kwargs["population"] = args.population
    if args.batch_size is not None:
        if args.optimizer == "ga":
            print("error: use --population for the GA batch size",
                  file=sys.stderr)
            return 2
        kwargs["batch_size"] = args.batch_size
    optimizer = make_optimizer(args.optimizer, seed=args.seed, **kwargs)

    profiles = [load_profile(path) for path in args.profiles]
    space = _load_space(args.space)
    objective = get_objective(args.objective,
                              power_cap_watts=args.power_cap)
    store = ProfileStore(args.cache) if args.cache else None
    engine = SweepEngine(workers=args.workers, store=store)
    problem = SearchProblem(profiles, space, objective, engine=engine)

    trajectory = optimizer.search(problem, args.budget)
    size = space.size()
    evaluated = len(trajectory)
    workloads = ", ".join(p.name for p in profiles)
    print(f"space:       {space.name} ({size} valid configurations)")
    print(f"workloads:   {workloads}")
    print(f"optimizer:   {optimizer.name} (seed {args.seed})")
    print(f"objective:   {objective.name} (minimized, averaged over "
          f"{len(profiles)} workload(s))")
    print(f"evaluated:   {evaluated} configs "
          f"({100.0 * evaluated / size:.1f}% of the space, budget "
          f"{args.budget}) in {trajectory.wall_seconds:.2f} s")
    best = trajectory.best
    point_text = " ".join(f"{k}={v}" for k, v in best.point.items())
    print(f"best {objective.name}: {best.fitness:.6e} "
          f"(found at evaluation {best.index + 1})")
    print(f"best point:  {point_text}")
    print(f"best config: {space.config(best.point).name}")
    improvements = []
    best_so_far = None
    for evaluation in trajectory.evaluations:
        if best_so_far is None or evaluation.fitness < best_so_far:
            best_so_far = evaluation.fitness
            improvements.append(evaluation)
    shown = improvements[-8:]
    print(f"best-so-far curve ({len(improvements)} improvements, "
          f"last {len(shown)} shown):")
    for evaluation in shown:
        print(f"  eval {evaluation.index + 1:>5d}: "
              f"{evaluation.fitness:.6e}")
    if args.trajectory:
        with open(args.trajectory, "w") as handle:
            json.dump(trajectory.as_dict(), handle, indent=2)
        print(f"trajectory -> {args.trajectory}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    duplicates = _duplicate_names(args.workloads)
    if duplicates:
        print("error: duplicate workload name(s): "
              + ", ".join(duplicates), file=sys.stderr)
        return 2
    if not 0.0 <= args.train_fraction < 1.0:
        print("error: --train-fraction must be in [0, 1)",
              file=sys.stderr)
        return 2
    space = _load_space(args.space)
    configs = _limited_configs(space, args.limit)
    if configs is None:
        print("error: --limit must be >= 0", file=sys.stderr)
        return 2
    if not configs:
        print("error: empty configuration grid", file=sys.stderr)
        return 2
    sampling = SamplingConfig(args.micro_trace, args.window)
    campaign = ValidationCampaign.from_workloads(
        args.workloads,
        configs,
        instructions=args.instructions,
        sampling=sampling,
        trace_seed=args.trace_seed,
        model_workers=args.workers,
        sim_workers=args.workers,
        train_fraction=args.train_fraction,
        seed=args.seed,
        space_name=space.name,
    )
    report = campaign.run()
    print("\n".join(report.summary_lines()))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"report -> {args.json}")
    return 0


def cmd_dvfs(args: argparse.Namespace) -> int:
    profile = load_profile(args.profile)
    base = _config_from_args(args)
    points = None
    if args.frequencies:
        try:
            frequencies = [float(text)
                           for text in args.frequencies.split(",")]
        except ValueError:
            print(f"error: --frequencies must be comma-separated "
                  f"numbers, got {args.frequencies!r}", file=sys.stderr)
            return 2
        points = [DVFSPoint(frequency, dvfs_vdd(frequency))
                  for frequency in frequencies]
    engine = (SweepEngine(workers=args.workers)
              if args.workers > 1 else None)
    results = explore_dvfs(profile, base, points=points, engine=engine)
    best = optimal_ed2p(results)
    print(f"workload: {profile.name}   base: {base.name}")
    for result in results:
        marker = "   <- ED2P optimum" if result is best else ""
        print(f"  {result.point.frequency_ghz:5.2f} GHz "
              f"@{result.point.vdd:.2f} V  "
              f"{result.seconds * 1e3:8.3f} ms  "
              f"{result.power_watts:6.2f} W  "
              f"{result.energy_joules * 1e3:8.3f} mJ  "
              f"ED2P {result.ed2p:.3e}{marker}")
    if args.power_cap is not None:
        candidates = [(config_at(base, result.point), result.result)
                      for result in results]
        capped = best_under_power_cap(candidates, args.power_cap)
        if capped is None:
            print(f"no operating point fits {args.power_cap:.1f} W")
        else:
            config, result = capped
            print(f"fastest under {args.power_cap:.1f} W: {config.name} "
                  f"({result.seconds * 1e3:.3f} ms, "
                  f"{result.power_watts:.2f} W)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Micro-architecture independent analytical processor "
            "performance and power modeling (ISPASS 2015 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("workloads",
                                help="list the synthetic workload suite")
    sub.set_defaults(func=cmd_workloads)

    sub = subparsers.add_parser(
        "profile",
        help="profile workload(s) to a file and/or a profile store")
    sub.add_argument("workloads", nargs="+", metavar="workload",
                     help="workload name(s) (see 'workloads')")
    sub.add_argument("-o", "--output", default=None,
                     help="output profile path (JSON; exactly one "
                          "workload)")
    sub.add_argument("--store", default=None, metavar="DIR",
                     help="pre-profile into this content-addressed "
                          "ProfileStore (with warmed StatStack tables) "
                          "so sweep/search/validate --cache runs start "
                          "warm")
    sub.add_argument("--instructions", type=int, default=50_000)
    sub.add_argument("--micro-trace", type=int, default=1000)
    sub.add_argument("--window", type=int, default=5000)
    sub.add_argument("--seed", type=int, default=42,
                     help="seed of the trace generator")
    sub.add_argument("--reuse-sample-rate", "--sample-rate",
                     dest="reuse_sample_rate", type=float, default=1.0,
                     help="fraction of accesses recorded by the reuse "
                          "pass (StatStack burst sampling)")
    sub.add_argument("--reuse-seed", type=int, default=0,
                     help="seed of the reuse-sampling RNG")
    sub.add_argument("--json", default=None, metavar="OUT.json",
                     help="write a machine-readable profiling summary "
                          "(fingerprints, timings)")
    sub.set_defaults(func=cmd_profile)

    sub = subparsers.add_parser("predict",
                                help="evaluate the analytical model")
    sub.add_argument("profile", help="profile file from 'profile'")
    sub.add_argument("--mlp-model", choices=("stride", "cold", "none"),
                     default="stride")
    _add_config_arguments(sub)
    sub.set_defaults(func=cmd_predict)

    sub = subparsers.add_parser("simulate",
                                help="run the cycle-level simulator")
    sub.add_argument("workload")
    sub.add_argument("--instructions", type=int, default=50_000)
    sub.add_argument("--seed", type=int, default=42)
    _add_config_arguments(sub)
    sub.set_defaults(func=cmd_simulate)

    sub = subparsers.add_parser("sweep",
                                help="design-space sweep + Pareto front")
    sub.add_argument("profiles", nargs="+", metavar="profile",
                     help="one or more profile files from 'profile'")
    sub.add_argument("--space", default=None, metavar="FILE.json",
                     help="declarative DesignSpace JSON (default: the "
                          "Table 6.3 grid)")
    sub.add_argument("--objective", choices=sorted(OBJECTIVES),
                     default=None,
                     help="rank the best average config by this "
                          "objective (default: average CPI)")
    sub.add_argument("--limit", type=int, default=None,
                     help="evaluate only the first N configurations "
                          "(0 evaluates none)")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes (1 = serial)")
    sub.add_argument("--cache", default=None, metavar="DIR",
                     help="profile-store directory for cached "
                          "StatStack tables")
    sub.set_defaults(func=cmd_sweep)

    sub = subparsers.add_parser(
        "search",
        help="guided design-space search under an evaluation budget")
    sub.add_argument("profiles", nargs="+", metavar="profile",
                     help="one or more profile files from 'profile'")
    sub.add_argument("--space", default=None, metavar="FILE.json",
                     help="declarative DesignSpace JSON (default: the "
                          "Table 6.3 grid)")
    sub.add_argument("--optimizer", choices=sorted(OPTIMIZERS),
                     default="ga",
                     help="search agent (default: ga)")
    sub.add_argument("--objective", choices=sorted(OBJECTIVES),
                     default="edp",
                     help="scalar to minimize (default: edp)")
    sub.add_argument("--power-cap", type=float, default=None,
                     metavar="WATTS",
                     help="discard configs whose predicted power "
                          "exceeds this cap")
    sub.add_argument("--budget", type=int, default=200,
                     help="max distinct configurations to evaluate")
    sub.add_argument("--seed", type=int, default=0,
                     help="optimizer RNG seed (same seed = same "
                          "trajectory at any worker count)")
    sub.add_argument("--population", type=int, default=None,
                     help="GA population size (ga only)")
    sub.add_argument("--batch-size", type=int, default=None,
                     help="proposals per engine batch (random/hill/sa)")
    sub.add_argument("--workers", type=int, default=1,
                     help="engine worker processes (1 = serial)")
    sub.add_argument("--cache", default=None, metavar="DIR",
                     help="profile-store directory for cached "
                          "StatStack tables")
    sub.add_argument("--trajectory", default=None, metavar="OUT.json",
                     help="write the full search trajectory as JSON")
    sub.set_defaults(func=cmd_search)

    sub = subparsers.add_parser(
        "validate",
        help="model-vs-simulator validation campaign (thesis "
             "S7.4/S7.5)")
    sub.add_argument("workloads", nargs="+", metavar="workload",
                     help="workload names (see 'workloads')")
    sub.add_argument("--space", default=None, metavar="FILE.json",
                     help="declarative DesignSpace JSON (default: the "
                          "Table 6.3 grid)")
    sub.add_argument("--limit", type=int, default=None,
                     help="validate only the first N configurations")
    sub.add_argument("--instructions", type=int, default=20_000,
                     help="trace length per workload")
    sub.add_argument("--micro-trace", type=int, default=1000)
    sub.add_argument("--window", type=int, default=5000)
    sub.add_argument("--trace-seed", type=int, default=42,
                     help="seed of the trace generators")
    sub.add_argument("--train-fraction", type=float, default=0.25,
                     help="fraction of simulated designs used to train "
                          "the S7.5 empirical baseline (0 disables)")
    sub.add_argument("--seed", type=int, default=0,
                     help="seed of the baseline subsample RNG")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes for both sweeps "
                          "(1 = serial; results are identical)")
    sub.add_argument("--json", default=None, metavar="OUT.json",
                     help="write the full report as JSON")
    sub.set_defaults(func=cmd_validate)

    sub = subparsers.add_parser(
        "dvfs",
        help="DVFS operating-point exploration (thesis S7.2-7.3)")
    sub.add_argument("profile", help="profile file from 'profile'")
    sub.add_argument("--frequencies", default=None,
                     metavar="GHZ[,GHZ...]",
                     help="comma-separated operating frequencies "
                          "(default: the Table 7.2 grid)")
    sub.add_argument("--power-cap", type=float, default=None,
                     metavar="WATTS",
                     help="also report the fastest point under this cap")
    sub.add_argument("--workers", type=int, default=1,
                     help="evaluate the grid through a SweepEngine "
                          "with this many workers (1 = local loop)")
    _add_config_arguments(sub)
    sub.set_defaults(func=cmd_dvfs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
