"""Command-line interface: profile, predict, simulate, sweep.

Mirrors the released AIP/PMT workflow: ``profile`` writes a reusable
profile file; ``predict`` evaluates the analytical model against it for a
named or custom configuration; ``simulate`` runs the cycle-level
reference; ``sweep`` explores a design space and reports the Pareto
frontier.

Examples::

    python -m repro.cli workloads
    python -m repro.cli profile gcc --instructions 50000 -o gcc.profile
    python -m repro.cli predict gcc.profile
    python -m repro.cli predict gcc.profile --width 2 --rob 64 --llc-mb 2
    python -m repro.cli simulate gcc --instructions 50000
    python -m repro.cli sweep gcc.profile
    python -m repro.cli sweep gcc.profile mcf.profile \\
        --workers 4 --cache .profile-cache
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.caches.cache import CacheConfig
from repro.core import AnalyticalModel, nehalem
from repro.core.machine import MachineConfig, design_space
from repro.explore.dse import best_average_config
from repro.explore.engine import SweepEngine
from repro.explore.pareto import StreamingParetoFront
from repro.profiler import SamplingConfig, profile_application
from repro.profiler.serialization import (
    ProfileStore,
    load_profile,
    save_profile,
)
from repro.simulator import simulate
from repro.workloads import generate_trace, make_workload, workload_names


def _config_from_args(args: argparse.Namespace) -> MachineConfig:
    """Build a configuration from the reference core + CLI overrides."""
    config = nehalem()
    if args.width is not None:
        config = replace(config, dispatch_width=args.width)
    if args.rob is not None:
        config = replace(config, rob_size=args.rob)
    if args.llc_mb is not None:
        config = replace(
            config,
            llc=CacheConfig(args.llc_mb << 20, 16, 64, latency=30),
        )
    if args.frequency is not None:
        config = config.with_frequency(args.frequency)
    if args.prefetch:
        config = replace(config, prefetch=True)
    return config


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=None,
                        help="dispatch width override")
    parser.add_argument("--rob", type=int, default=None,
                        help="ROB size override")
    parser.add_argument("--llc-mb", type=int, default=None,
                        help="LLC size in MB")
    parser.add_argument("--frequency", type=float, default=None,
                        help="clock frequency in GHz")
    parser.add_argument("--prefetch", action="store_true",
                        help="enable the stride prefetcher")


def cmd_workloads(args: argparse.Namespace) -> int:
    for name in workload_names():
        print(name)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    trace = generate_trace(
        make_workload(args.workload, seed=args.seed),
        max_instructions=args.instructions,
    )
    sampling = SamplingConfig(
        args.micro_trace,
        args.window,
        reuse_sample_rate=args.reuse_sample_rate,
        reuse_seed=args.reuse_seed,
    )
    profile = profile_application(trace, sampling)
    save_profile(profile, args.output)
    print(f"profiled {profile.num_instructions} instructions of "
          f"{profile.name} ({len(profile.micro_traces)} micro-traces) "
          f"-> {args.output}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    profile = load_profile(args.profile)
    config = _config_from_args(args)
    model = AnalyticalModel(mlp_model=args.mlp_model)
    result = model.predict(profile, config)
    print(f"workload:  {profile.name}")
    print(f"config:    {config.name}")
    print(f"CPI:       {result.cpi:.3f}   (IPC {1 / result.cpi:.3f})")
    print(f"time:      {result.seconds * 1e3:.3f} ms")
    print(f"power:     {result.power_watts:.2f} W "
          f"(static {result.power.static_total:.2f} W)")
    print(f"energy:    {result.energy_joules * 1e3:.3f} mJ   "
          f"EDP {result.edp:.3e}   ED2P {result.ed2p:.3e}")
    print("CPI stack: " + "  ".join(
        f"{key}={value:.3f}" for key, value in result.cpi_stack().items()
    ))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    trace = generate_trace(
        make_workload(args.workload, seed=args.seed),
        max_instructions=args.instructions,
    )
    config = _config_from_args(args)
    result = simulate(trace, config)
    print(f"workload:  {trace.name}")
    print(f"config:    {config.name}")
    print(f"cycles:    {result.cycles:.0f}")
    print(f"CPI:       {result.cpi:.3f}")
    print(f"branches:  {result.branches} "
          f"({result.branch_mispredictions} mispredicted)")
    print(f"MPKI:      " + "/".join(f"{m:.1f}" for m in result.mpki))
    print("CPI stack: " + "  ".join(
        f"{key}={value:.3f}" for key, value in result.cpi_stack().items()
    ))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    profiles = [load_profile(path) for path in args.profiles]
    configs = design_space()
    if args.limit:
        configs = configs[:args.limit]
    store = ProfileStore(args.cache) if args.cache else None
    engine = SweepEngine(workers=args.workers, store=store)

    # Stream the sweep: Pareto frontiers fold incrementally per
    # workload, so partial results are usable the moment they arrive.
    frontiers = {p.name: StreamingParetoFront() for p in profiles}
    results = {p.name: [] for p in profiles}
    for point in engine.iter_sweep(profiles, configs):
        results[point.workload].append(point)
        frontiers[point.workload].add_point(point)

    for profile in profiles:
        points = results[profile.name]
        frontier = frontiers[profile.name].frontier()
        print(f"{profile.name}: {len(points)} designs evaluated; "
              f"{len(frontier)} Pareto-optimal:")
        for _, _, point in frontier:
            print(f"  {point.config.name:<32s} "
                  f"{point.seconds * 1e6:9.1f} us "
                  f"{point.power_watts:7.2f} W  CPI {point.cpi:5.2f}")
    if len(profiles) > 1:
        print("best average config: "
              f"{best_average_config(results)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Micro-architecture independent analytical processor "
            "performance and power modeling (ISPASS 2015 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("workloads",
                                help="list the synthetic workload suite")
    sub.set_defaults(func=cmd_workloads)

    sub = subparsers.add_parser("profile",
                                help="profile a workload to a file")
    sub.add_argument("workload", help="workload name (see 'workloads')")
    sub.add_argument("-o", "--output", required=True,
                     help="output profile path (JSON)")
    sub.add_argument("--instructions", type=int, default=50_000)
    sub.add_argument("--micro-trace", type=int, default=1000)
    sub.add_argument("--window", type=int, default=5000)
    sub.add_argument("--seed", type=int, default=42)
    sub.add_argument("--reuse-sample-rate", type=float, default=1.0,
                     help="fraction of accesses recorded by the reuse "
                          "pass (StatStack burst sampling)")
    sub.add_argument("--reuse-seed", type=int, default=0,
                     help="seed of the reuse-sampling RNG")
    sub.set_defaults(func=cmd_profile)

    sub = subparsers.add_parser("predict",
                                help="evaluate the analytical model")
    sub.add_argument("profile", help="profile file from 'profile'")
    sub.add_argument("--mlp-model", choices=("stride", "cold", "none"),
                     default="stride")
    _add_config_arguments(sub)
    sub.set_defaults(func=cmd_predict)

    sub = subparsers.add_parser("simulate",
                                help="run the cycle-level simulator")
    sub.add_argument("workload")
    sub.add_argument("--instructions", type=int, default=50_000)
    sub.add_argument("--seed", type=int, default=42)
    _add_config_arguments(sub)
    sub.set_defaults(func=cmd_simulate)

    sub = subparsers.add_parser("sweep",
                                help="design-space sweep + Pareto front")
    sub.add_argument("profiles", nargs="+", metavar="profile",
                     help="one or more profile files from 'profile'")
    sub.add_argument("--limit", type=int, default=0,
                     help="evaluate only the first N configurations")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes (1 = serial)")
    sub.add_argument("--cache", default=None, metavar="DIR",
                     help="profile-store directory for cached "
                          "StatStack tables")
    sub.set_defaults(func=cmd_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
