"""Command-line interface: profile, predict, simulate, sweep, search,
validate, dvfs, run, serve, request, stats, lint.

Every experiment subcommand is a thin adapter over the programmatic API
(:mod:`repro.api`): it parses flags into a declarative
:class:`~repro.api.spec.ExperimentSpec`, executes it on a
:class:`~repro.api.session.Session`, and renders the unified
:class:`~repro.api.results.RunResult` payload -- output is bitwise
identical to the historical hand-wired implementations.  ``run``
executes spec JSON files directly (one warm session for the whole
campaign, with optional run-store skipping of already-computed specs).

Examples::

    python -m repro.cli workloads
    python -m repro.cli profile gcc --instructions 50000 -o gcc.profile
    python -m repro.cli profile gcc mcf lbm --store .profile-cache \\
        --json profiles.json
    python -m repro.cli predict gcc.profile
    python -m repro.cli predict gcc.profile --width 2 --rob 64 --llc-mb 2
    python -m repro.cli simulate gcc --instructions 50000
    python -m repro.cli sweep gcc.profile
    python -m repro.cli sweep gcc.profile mcf.profile \\
        --workers 4 --cache .profile-cache --objective edp
    python -m repro.cli search gcc.profile --optimizer ga \\
        --budget 200 --objective edp --seed 0
    python -m repro.cli search gcc.profile --space space.json \\
        --optimizer sa --budget 500 --trajectory out.json
    python -m repro.cli validate gcc mcf --limit 64 --workers 4 \\
        --json report.json
    python -m repro.cli dvfs gcc.profile --power-cap 12
    python -m repro.cli run sweep.json validate.json \\
        --workers 4 --runs .run-store
    python -m repro.cli serve --port 8765 --workers 4 --runs .run-store
    python -m repro.cli request sweep.json --port 8765 --stream
    python -m repro.cli request --stats --port 8765
    python -m repro.cli lint src/repro --baseline tools/lint_baseline.toml
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro import obs
from repro.api import (
    ExperimentSpec,
    Session,
    SpecError,
    config_from_overrides,
)
from repro.backends import MODEL_BACKENDS
from repro.explore.search import OBJECTIVES, OPTIMIZERS
from repro.simulator import simulate
from repro.workloads import generate_trace, make_workload, workload_names


def _add_model_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model-backend", choices=MODEL_BACKENDS,
                        default=None,
                        help="model evaluation backend (default: "
                             "REPRO_MODEL_BACKEND or 'batch'; results "
                             "are bitwise identical)")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=None,
                        help="dispatch width override")
    parser.add_argument("--rob", type=int, default=None,
                        help="ROB size override")
    parser.add_argument("--llc-mb", type=int, default=None,
                        help="LLC size in MB")
    parser.add_argument("--frequency", type=float, default=None,
                        help="clock frequency in GHz")
    parser.add_argument("--prefetch", action="store_true",
                        help="enable the stride prefetcher")


def _add_telemetry_arguments(
    parser: argparse.ArgumentParser, suppress: bool = False
) -> None:
    """Add the global ``--trace`` / ``--metrics`` telemetry flags.

    The flags live on the root parser (with real defaults) *and* on
    every subcommand with ``default=argparse.SUPPRESS``, so they can be
    written either before or after the subcommand without the
    subparser's default clobbering a root-level value.
    """
    trace_kwargs = ({"default": argparse.SUPPRESS} if suppress
                    else {"default": None})
    metrics_kwargs = ({"default": argparse.SUPPRESS} if suppress
                      else {"default": False})
    parser.add_argument(
        "--trace", metavar="FILE.json", dest="trace", **trace_kwargs,
        help="record wall-time spans and export a Chrome "
             "trace_event file (open in chrome://tracing / Perfetto, "
             "or summarize with 'repro stats')")
    parser.add_argument(
        "--metrics", action="store_true", dest="metrics",
        **metrics_kwargs,
        help="print a telemetry summary (span table, cache/store "
             "counters) after the command")


def _error(message: str) -> int:
    """Print one CLI error line to stderr and return exit code 2."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def cmd_workloads(args: argparse.Namespace) -> int:
    for name in workload_names():
        print(name)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    duplicates = _duplicate_names(args.workloads)
    if duplicates:
        return _error("duplicate workload name(s): "
                      + ", ".join(duplicates)
                      + " (profiles are keyed by workload name; "
                      "duplicates would silently collide)")
    if args.output is None and args.store is None:
        return _error("need -o/--output and/or --store")
    if args.output is not None and len(args.workloads) > 1:
        return _error("-o/--output profiles exactly one workload; use "
                      "--store for batches")
    spec = ExperimentSpec(
        "profile",
        workloads=list(args.workloads),
        output=args.output,
        store=args.store,
        instructions=args.instructions,
        micro_trace=args.micro_trace,
        window=args.window,
        seed=args.seed,
        reuse_sample_rate=args.reuse_sample_rate,
        reuse_seed=args.reuse_seed,
    )
    with Session() as session:
        result = session.run(spec)
    for entry in result.data["profiles"]:
        destinations = [d for d in (
            entry["output"],
            f"store:{entry['fingerprint'][:12]}"
            if entry["fingerprint"] else None,
        ) if d]
        print(f"profiled {entry['instructions']} instructions of "
              f"{entry['workload']} ({entry['micro_traces']} "
              f"micro-traces) -> {', '.join(destinations)}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.data, handle, indent=2)
        print(f"report -> {args.json}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        "predict",
        profile=args.profile,
        mlp_model=args.mlp_model,
        width=args.width,
        rob=args.rob,
        llc_mb=args.llc_mb,
        frequency=args.frequency,
        prefetch=args.prefetch,
    )
    with Session() as session:
        data = session.run(spec).data
    print(f"workload:  {data['workload']}")
    print(f"config:    {data['config']}")
    print(f"CPI:       {data['cpi']:.3f}   "
          f"(IPC {1 / data['cpi']:.3f})")
    print(f"time:      {data['seconds'] * 1e3:.3f} ms")
    print(f"power:     {data['power_watts']:.2f} W "
          f"(static {data['power_static_watts']:.2f} W)")
    print(f"energy:    {data['energy_joules'] * 1e3:.3f} mJ   "
          f"EDP {data['edp']:.3e}   ED2P {data['ed2p']:.3e}")
    print("CPI stack: " + "  ".join(
        f"{key}={value:.3f}"
        for key, value in data["cpi_stack"].items()
    ))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    with obs.span("workloads.trace", workload=args.workload):
        trace = generate_trace(
            make_workload(args.workload, seed=args.seed),
            max_instructions=args.instructions,
        )
    config = config_from_overrides(
        width=args.width,
        rob=args.rob,
        llc_mb=args.llc_mb,
        frequency=args.frequency,
        prefetch=args.prefetch,
    )
    with obs.span("simulate.run", workload=args.workload,
                  config=config.name):
        result = simulate(trace, config)
    obs.metrics().inc("sim.points")
    print(f"workload:  {trace.name}")
    print(f"config:    {config.name}")
    print(f"cycles:    {result.cycles:.0f}")
    print(f"CPI:       {result.cpi:.3f}")
    print(f"branches:  {result.branches} "
          f"({result.branch_mispredictions} mispredicted)")
    print(f"MPKI:      " + "/".join(f"{m:.1f}" for m in result.mpki))
    print("CPI stack: " + "  ".join(
        f"{key}={value:.3f}" for key, value in result.cpi_stack().items()
    ))
    return 0


def _duplicate_names(names: List[str]) -> List[str]:
    """Names appearing more than once (results are keyed on them)."""
    return sorted({name for name in names if names.count(name) > 1})


def cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = ExperimentSpec(
            "sweep",
            profiles=list(args.profiles),
            space=args.space,
            objective=args.objective,
            limit=args.limit,
        )
        with Session(workers=args.workers,
                     profile_store=args.cache,
                     model_backend=args.model_backend) as session:
            data = session.run(spec).data
    except SpecError as exc:
        return _error(str(exc))
    for w in data["workloads"]:
        print(f"{w['workload']}: {len(w['points'])} designs evaluated; "
              f"{len(w['frontier'])} Pareto-optimal:")
        for p in w["frontier"]:
            print(f"  {p['config']:<32s} "
                  f"{p['seconds'] * 1e6:9.1f} us "
                  f"{p['power_watts']:7.2f} W  CPI {p['cpi']:5.2f}")
    best = data["best_average"]
    if best is not None:
        if best["objective"]:
            print(f"best average config ({best['objective']}): "
                  f"{best['config']}")
        else:
            print(f"best average config: {best['config']}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    # Argument-only validation first, before any profile I/O.
    if args.population is not None and args.optimizer != "ga":
        return _error("--population only applies to --optimizer ga")
    if args.batch_size is not None and args.optimizer == "ga":
        return _error("use --population for the GA batch size")
    try:
        spec = ExperimentSpec(
            "search",
            profiles=list(args.profiles),
            space=args.space,
            optimizer=args.optimizer,
            objective=args.objective,
            power_cap=args.power_cap,
            budget=args.budget,
            seed=args.seed,
            population=args.population,
            batch_size=args.batch_size,
        )
        with Session(workers=args.workers,
                     profile_store=args.cache,
                     model_backend=args.model_backend) as session:
            data = session.run(spec).data
    except SpecError as exc:
        return _error(str(exc))
    trajectory = data["trajectory"]
    evaluations = trajectory["evaluations"]
    evaluated = len(evaluations)
    size = data["space_size"]
    print(f"space:       {data['space']} ({size} valid configurations)")
    print(f"workloads:   {', '.join(data['workloads'])}")
    print(f"optimizer:   {data['optimizer']} (seed {data['seed']})")
    print(f"objective:   {data['objective']} (minimized, averaged over "
          f"{len(data['workloads'])} workload(s))")
    print(f"evaluated:   {evaluated} configs "
          f"({100.0 * evaluated / size:.1f}% of the space, budget "
          f"{data['budget']}) in {trajectory['wall_seconds']:.2f} s")
    best = data["best"]
    point_text = " ".join(f"{k}={v}" for k, v in best["point"].items())
    print(f"best {data['objective']}: {best['fitness']:.6e} "
          f"(found at evaluation {best['index'] + 1})")
    print(f"best point:  {point_text}")
    print(f"best config: {best['config']}")
    improvements = []
    best_so_far = None
    for evaluation in evaluations:
        if best_so_far is None or evaluation["fitness"] < best_so_far:
            best_so_far = evaluation["fitness"]
            improvements.append(evaluation)
    shown = improvements[-8:]
    print(f"best-so-far curve ({len(improvements)} improvements, "
          f"last {len(shown)} shown):")
    for evaluation in shown:
        print(f"  eval {evaluation['index'] + 1:>5d}: "
              f"{evaluation['fitness']:.6e}")
    if args.trajectory:
        with open(args.trajectory, "w") as handle:
            json.dump(trajectory, handle, indent=2)
        print(f"trajectory -> {args.trajectory}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    duplicates = _duplicate_names(args.workloads)
    if duplicates:
        return _error("duplicate workload name(s): "
                      + ", ".join(duplicates))
    try:
        spec = ExperimentSpec(
            "validate",
            workloads=list(args.workloads),
            space=args.space,
            limit=args.limit,
            instructions=args.instructions,
            micro_trace=args.micro_trace,
            window=args.window,
            trace_seed=args.trace_seed,
            train_fraction=args.train_fraction,
            seed=args.seed,
        )
        with Session(workers=args.workers,
                     model_backend=args.model_backend) as session:
            data = session.run(spec).data
    except SpecError as exc:
        return _error(str(exc))
    # The payload is ValidationReport.as_dict(); re-render it through
    # the one canonical formatter instead of duplicating it here.
    from repro.explore.validate import ValidationReport

    print("\n".join(ValidationReport.from_dict(data).summary_lines()))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(data, handle, indent=2)
        print(f"report -> {args.json}")
    return 0


def cmd_dvfs(args: argparse.Namespace) -> int:
    frequencies = None
    if args.frequencies:
        try:
            frequencies = [float(text)
                           for text in args.frequencies.split(",")]
        except ValueError:
            return _error(f"--frequencies must be comma-separated "
                          f"numbers, got {args.frequencies!r}")
    try:
        spec = ExperimentSpec(
            "dvfs",
            profile=args.profile,
            frequencies=frequencies,
            power_cap=args.power_cap,
            width=args.width,
            rob=args.rob,
            llc_mb=args.llc_mb,
            frequency=args.frequency,
            prefetch=args.prefetch,
        )
        with Session(workers=args.workers,
                     model_backend=args.model_backend) as session:
            data = session.run(spec).data
    except SpecError as exc:
        return _error(str(exc))
    print(f"workload: {data['workload']}   base: {data['base_config']}")
    for index, p in enumerate(data["points"]):
        marker = ("   <- ED2P optimum"
                  if index == data["optimum_index"] else "")
        print(f"  {p['frequency_ghz']:5.2f} GHz "
              f"@{p['vdd']:.2f} V  "
              f"{p['seconds'] * 1e3:8.3f} ms  "
              f"{p['power_watts']:6.2f} W  "
              f"{p['energy_joules'] * 1e3:8.3f} mJ  "
              f"ED2P {p['ed2p']:.3e}{marker}")
    cap = data["power_cap"]
    if cap is not None:
        if cap["config"] is None:
            print(f"no operating point fits {cap['watts']:.1f} W")
        else:
            print(f"fastest under {cap['watts']:.1f} W: {cap['config']} "
                  f"({cap['seconds'] * 1e3:.3f} ms, "
                  f"{cap['power_watts']:.2f} W)")
    return 0


def _recovery_lines(session) -> List[str]:
    """Readable recovery summary from the session's plain-int counters."""
    pairs = [
        ("task retries", session.pool.retries),
        ("task timeouts", session.pool.timeouts),
        ("pool restarts", session.pool.restarts),
        ("worker crashes", session.pool.worker_crashes),
        ("pool give-ups", session.pool.give_ups),
    ]
    if session.run_store is not None:
        pairs.append(("run-store entries quarantined",
                      session.run_store.quarantined))
    if session.profile_store is not None:
        pairs.append(("table entries quarantined",
                      session.profile_store.tables_quarantined))
    pairs.append(("failed specs", len(session.failures)))
    lines = [f"  {label:<32} {value}"
             for label, value in pairs if value]
    if not lines:
        return []
    return ["-- recovery " + "-" * 48] + lines


def cmd_run(args: argparse.Namespace) -> int:
    from repro.faults import ENV_SEED, ENV_SPEC, FaultSpecError, \
        RetryPolicy
    from repro.faults import inject as faults_inject

    specs = []
    for path in args.specs:
        try:
            specs.append(ExperimentSpec.load(path))
        except (OSError, ValueError) as exc:
            return _error(f"{path}: {exc}")
    if args.faults is not None:
        # Validate the spec before exporting it to worker processes.
        try:
            faults_inject.FaultPlan.parse(args.faults,
                                          seed=args.faults_seed)
        except FaultSpecError as exc:
            return _error(f"--faults: {exc}")
        os.environ[ENV_SPEC] = args.faults
        os.environ[ENV_SEED] = str(args.faults_seed)
    try:
        faults_inject.refresh()
    except FaultSpecError as exc:
        return _error(f"{faults_inject.ENV_SPEC}: {exc}")
    try:
        retry = RetryPolicy(max_attempts=args.task_retries + 1,
                            timeout=args.task_timeout)
    except ValueError as exc:
        return _error(str(exc))
    try:
        with Session(workers=args.workers,
                     profile_store=args.store,
                     run_store=args.runs,
                     retry=retry) as session:
            results = session.run_many(specs,
                                       keep_going=args.keep_going)
            failures = list(session.failures)
            recovery = _recovery_lines(session)
    except SpecError as exc:
        return _error(str(exc))
    for path, result in zip(args.specs, results):
        if result is None:
            print(f"{'FAILED':<6} {'-':<9} {'':>14} {path}")
            continue
        status = "cached" if result.cached else "ran"
        print(f"{status:<6} {result.kind:<9} "
              f"[{result.spec_fingerprint[:12]}] {path}")
    computed = sum(1 for r in results
                   if r is not None and not r.cached)
    cached = sum(1 for r in results if r is not None and r.cached)
    summary = (f"{len(results)} spec(s): {computed} computed, "
               f"{cached} from run store")
    if failures:
        summary += f", {len(failures)} failed"
    print(summary)
    if recovery:
        print("\n".join(recovery))
    for spec, exc in failures:
        print(f"failed: {spec.kind} "
              f"[{spec.fingerprint[:12]}] ({type(exc).__name__}: {exc})",
              file=sys.stderr)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([r.to_dict() if r is not None else None
                       for r in results], handle, indent=2)
        print(f"results -> {args.json}")
    return 1 if failures else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ExperimentServer, ShardedRunStore

    run_store = None
    if args.runs is not None:
        run_store = ShardedRunStore(args.runs,
                                    max_entries=args.max_entries)
    try:
        session = Session(workers=args.workers,
                          profile_store=args.store,
                          run_store=run_store,
                          model_backend=args.model_backend)
    except (SpecError, ValueError) as exc:
        return _error(str(exc))
    server = ExperimentServer(
        session, args.host, args.port,
        max_queue=args.max_queue,
        request_timeout=args.request_timeout,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        drain_timeout=args.drain_timeout,
    )

    async def _serve() -> None:
        await server.start()
        print(f"repro serve: listening on "
              f"http://{server.host}:{server.port} "
              f"(workers={args.workers}, "
              f"runs={args.runs or 'none'})")
        print("repro serve: POST /run | GET /health /stats /metrics")
        sys.stdout.flush()
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        return _error(f"bind {args.host}:{args.port}: {exc}")
    finally:
        session.close()
    print(f"repro serve: drained "
          f"({server.requests} request(s), "
          f"{server.computations} computation(s), "
          f"{server.coalesced} coalesced)")
    return 0


def cmd_request(args: argparse.Namespace) -> int:
    from repro.serve import ServeError, get_json, request_run

    if args.stats:
        try:
            payload = get_json(args.host, args.port, "/stats",
                               timeout=args.timeout)
        except (ServeError, OSError) as exc:
            return _error(str(exc))
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.spec is None:
        return _error("spec file required (or use --stats)")
    try:
        spec = ExperimentSpec.load(args.spec)
    except (OSError, ValueError) as exc:
        return _error(f"{args.spec}: {exc}")

    def on_point(event) -> None:
        print(json.dumps(event, sort_keys=True))

    try:
        reply = request_run(
            args.host, args.port, spec.to_dict(),
            stream=args.stream, timeout=args.timeout,
            on_point=on_point if args.stream else None)
    except (ServeError, OSError) as exc:
        return _error(str(exc))
    status = "cached" if reply["cached"] else "computed"
    print(f"{status:<8} {spec.kind:<9} "
          f"[{spec.fingerprint[:12]}] {args.spec}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(reply, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"result -> {args.json}")
    return 0


def _span_table_lines(spans) -> List[str]:
    """Fixed-width table of aggregated span stats (name-keyed dicts)."""
    lines = [f"{'span':<28} {'calls':>6} {'total ms':>10} "
             f"{'mean ms':>10} {'max ms':>10}"]
    for name, record in spans.items():
        lines.append(
            f"{name:<28} {record['calls']:>6d} "
            f"{record['total_ms']:>10.2f} {record['mean_ms']:>10.2f} "
            f"{record['max_ms']:>10.2f}"
        )
    return lines


def _metrics_lines(metrics) -> List[str]:
    """Readable lines for one metrics snapshot (or delta)."""
    lines: List[str] = []
    if metrics.get("counters"):
        lines.append("counters:")
        for name, value in metrics["counters"].items():
            lines.append(f"  {name:<36} {value}")
    if metrics.get("gauges"):
        lines.append("gauges:")
        for name, value in metrics["gauges"].items():
            lines.append(f"  {name:<36} {value}")
    if metrics.get("histograms"):
        lines.append("histograms:")
        for name, record in metrics["histograms"].items():
            mean = (record["sum"] / record["count"]
                    if record["count"] else 0.0)
            lines.append(
                f"  {name:<36} count={record['count']} "
                f"mean={mean:.6g} min={record['min']:.6g} "
                f"max={record['max']:.6g}"
            )
    return lines


def _render_telemetry(telemetry) -> None:
    """Print the ``--metrics`` summary: span table + metric values."""
    summary = telemetry.summary()
    print("-- telemetry " + "-" * 47)
    if summary["spans"]:
        print("\n".join(_span_table_lines(summary["spans"])))
    lines = _metrics_lines(summary["metrics"])
    if lines:
        print("\n".join(lines))


def cmd_stats(args: argparse.Namespace) -> int:
    try:
        events = obs.read_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        return _error(f"{args.trace_file}: {exc}")
    spans = obs.span_stats(events)
    metrics = None
    for event in events:
        if event.get("name") == obs.METRICS_EVENT:
            metrics = event.get("args", {}).get("metrics")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"spans": spans, "metrics": metrics},
                      handle, indent=2)
        print(f"stats -> {args.json}")
        return 0
    n_events = sum(1 for e in events if e.get("ph") == "X")
    print(f"{args.trace_file}: {n_events} span event(s), "
          f"{len(spans)} distinct span(s)")
    if spans:
        print("\n".join(_span_table_lines(spans)))
    if metrics:
        print("\n".join(_metrics_lines(metrics)))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Imported here so the analysis package stays off the hot path of
    # every experiment subcommand.
    from repro.analysis import BaselineError, LintError, run_lint

    try:
        report = run_lint(
            args.paths or ["src/repro"],
            baseline=args.baseline,
            rules=args.rules or None,
        )
    except (LintError, BaselineError, OSError) as exc:
        return _error(str(exc))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_json_dict(), handle, indent=2)
            handle.write("\n")
        print(f"report -> {args.json}")
    print("\n".join(report.render_lines()))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Micro-architecture independent analytical processor "
            "performance and power modeling (ISPASS 2015 reproduction)"
        ),
    )
    _add_telemetry_arguments(parser)
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("workloads",
                                help="list the synthetic workload suite")
    sub.set_defaults(func=cmd_workloads)

    sub = subparsers.add_parser(
        "profile",
        help="profile workload(s) to a file and/or a profile store")
    sub.add_argument("workloads", nargs="+", metavar="workload",
                     help="workload name(s) (see 'workloads')")
    sub.add_argument("-o", "--output", default=None,
                     help="output profile path (JSON; exactly one "
                          "workload)")
    sub.add_argument("--store", default=None, metavar="DIR",
                     help="pre-profile into this content-addressed "
                          "ProfileStore (with warmed StatStack tables) "
                          "so sweep/search/validate --cache runs start "
                          "warm")
    sub.add_argument("--instructions", type=int, default=50_000)
    sub.add_argument("--micro-trace", type=int, default=1000)
    sub.add_argument("--window", type=int, default=5000)
    sub.add_argument("--seed", type=int, default=42,
                     help="seed of the trace generator")
    sub.add_argument("--reuse-sample-rate", "--sample-rate",
                     dest="reuse_sample_rate", type=float, default=1.0,
                     help="fraction of accesses recorded by the reuse "
                          "pass (StatStack burst sampling)")
    sub.add_argument("--reuse-seed", type=int, default=0,
                     help="seed of the reuse-sampling RNG")
    sub.add_argument("--json", default=None, metavar="OUT.json",
                     help="write a machine-readable profiling summary "
                          "(fingerprints, timings)")
    sub.set_defaults(func=cmd_profile)

    sub = subparsers.add_parser("predict",
                                help="evaluate the analytical model")
    sub.add_argument("profile", help="profile file from 'profile'")
    sub.add_argument("--mlp-model", choices=("stride", "cold", "none"),
                     default="stride")
    _add_config_arguments(sub)
    sub.set_defaults(func=cmd_predict)

    sub = subparsers.add_parser("simulate",
                                help="run the cycle-level simulator")
    sub.add_argument("workload")
    sub.add_argument("--instructions", type=int, default=50_000)
    sub.add_argument("--seed", type=int, default=42)
    _add_config_arguments(sub)
    sub.set_defaults(func=cmd_simulate)

    sub = subparsers.add_parser("sweep",
                                help="design-space sweep + Pareto front")
    sub.add_argument("profiles", nargs="+", metavar="profile",
                     help="one or more profile files from 'profile'")
    sub.add_argument("--space", default=None, metavar="FILE.json",
                     help="declarative DesignSpace JSON (default: the "
                          "Table 6.3 grid)")
    sub.add_argument("--objective", choices=sorted(OBJECTIVES),
                     default=None,
                     help="rank the best average config by this "
                          "objective (default: average CPI)")
    sub.add_argument("--limit", type=int, default=None,
                     help="evaluate only the first N configurations "
                          "(0 evaluates none)")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes (1 = serial)")
    sub.add_argument("--cache", default=None, metavar="DIR",
                     help="profile-store directory for cached "
                          "StatStack tables")
    _add_model_backend_argument(sub)
    sub.set_defaults(func=cmd_sweep)

    sub = subparsers.add_parser(
        "search",
        help="guided design-space search under an evaluation budget")
    sub.add_argument("profiles", nargs="+", metavar="profile",
                     help="one or more profile files from 'profile'")
    sub.add_argument("--space", default=None, metavar="FILE.json",
                     help="declarative DesignSpace JSON (default: the "
                          "Table 6.3 grid)")
    sub.add_argument("--optimizer", choices=sorted(OPTIMIZERS),
                     default="ga",
                     help="search agent (default: ga)")
    sub.add_argument("--objective", choices=sorted(OBJECTIVES),
                     default="edp",
                     help="scalar to minimize (default: edp)")
    sub.add_argument("--power-cap", type=float, default=None,
                     metavar="WATTS",
                     help="discard configs whose predicted power "
                          "exceeds this cap")
    sub.add_argument("--budget", type=int, default=200,
                     help="max distinct configurations to evaluate")
    sub.add_argument("--seed", type=int, default=0,
                     help="optimizer RNG seed (same seed = same "
                          "trajectory at any worker count)")
    sub.add_argument("--population", type=int, default=None,
                     help="GA population size (ga only)")
    sub.add_argument("--batch-size", type=int, default=None,
                     help="proposals per engine batch (random/hill/sa)")
    sub.add_argument("--workers", type=int, default=1,
                     help="engine worker processes (1 = serial)")
    sub.add_argument("--cache", default=None, metavar="DIR",
                     help="profile-store directory for cached "
                          "StatStack tables")
    sub.add_argument("--trajectory", default=None, metavar="OUT.json",
                     help="write the full search trajectory as JSON")
    _add_model_backend_argument(sub)
    sub.set_defaults(func=cmd_search)

    sub = subparsers.add_parser(
        "validate",
        help="model-vs-simulator validation campaign (thesis "
             "S7.4/S7.5)")
    sub.add_argument("workloads", nargs="+", metavar="workload",
                     help="workload names (see 'workloads')")
    sub.add_argument("--space", default=None, metavar="FILE.json",
                     help="declarative DesignSpace JSON (default: the "
                          "Table 6.3 grid)")
    sub.add_argument("--limit", type=int, default=None,
                     help="validate only the first N configurations")
    sub.add_argument("--instructions", type=int, default=20_000,
                     help="trace length per workload")
    sub.add_argument("--micro-trace", type=int, default=1000)
    sub.add_argument("--window", type=int, default=5000)
    sub.add_argument("--trace-seed", type=int, default=42,
                     help="seed of the trace generators")
    sub.add_argument("--train-fraction", type=float, default=0.25,
                     help="fraction of simulated designs used to train "
                          "the S7.5 empirical baseline (0 disables)")
    sub.add_argument("--seed", type=int, default=0,
                     help="seed of the baseline subsample RNG")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes for both sweeps "
                          "(1 = serial; results are identical)")
    sub.add_argument("--json", default=None, metavar="OUT.json",
                     help="write the full report as JSON")
    _add_model_backend_argument(sub)
    sub.set_defaults(func=cmd_validate)

    sub = subparsers.add_parser(
        "dvfs",
        help="DVFS operating-point exploration (thesis S7.2-7.3)")
    sub.add_argument("profile", help="profile file from 'profile'")
    sub.add_argument("--frequencies", default=None,
                     metavar="GHZ[,GHZ...]",
                     help="comma-separated operating frequencies "
                          "(default: the Table 7.2 grid)")
    sub.add_argument("--power-cap", type=float, default=None,
                     metavar="WATTS",
                     help="also report the fastest point under this cap")
    sub.add_argument("--workers", type=int, default=1,
                     help="evaluate the grid through the session's "
                          "SweepEngine with this many workers "
                          "(1 = serial)")
    _add_config_arguments(sub)
    _add_model_backend_argument(sub)
    sub.set_defaults(func=cmd_dvfs)

    sub = subparsers.add_parser(
        "run",
        help="execute declarative ExperimentSpec JSON file(s) on one "
             "warm session")
    sub.add_argument("specs", nargs="+", metavar="spec.json",
                     help="ExperimentSpec JSON files (kind: profile | "
                          "predict | sweep | search | validate | dvfs)")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes shared by every stage "
                          "(1 = serial)")
    sub.add_argument("--store", default=None, metavar="DIR",
                     help="ProfileStore directory shared by every "
                          "stage (warmed StatStack tables)")
    sub.add_argument("--runs", default=None, metavar="DIR",
                     help="RunStore directory: cache results by spec "
                          "fingerprint and skip already-computed specs "
                          "(also the campaign checkpoint: re-running "
                          "resumes where an aborted campaign stopped)")
    sub.add_argument("--json", default=None, metavar="OUT.json",
                     help="write every RunResult artifact as one JSON "
                          "list")
    sub.add_argument("--task-timeout", type=float, default=None,
                     metavar="SEC",
                     help="per-task wall-clock budget on the worker "
                          "pool; a task exceeding it restarts the pool "
                          "and is retried (default: no timeout)")
    sub.add_argument("--task-retries", type=int, default=2, metavar="N",
                     help="retries per task after the first attempt "
                          "(default: 2)")
    sub.add_argument("--keep-going", action="store_true",
                     help="record a failing spec and continue the "
                          "campaign instead of aborting (exit status 1 "
                          "if anything failed)")
    sub.add_argument("--faults", default=None, metavar="SPEC",
                     help="deterministic fault injection, e.g. "
                          "'crash:0.05,hang:0.01:0.2,corrupt_store:0.02'"
                          " (kinds: crash | hang | task_error | "
                          "batch_error | corrupt_store); equivalent to "
                          "setting REPRO_FAULTS")
    sub.add_argument("--faults-seed", type=int, default=0, metavar="N",
                     help="seed of the fault-injection hash "
                          "(REPRO_FAULTS_SEED; default: 0)")
    sub.set_defaults(func=cmd_run)

    sub = subparsers.add_parser(
        "serve",
        help="serve experiments over HTTP from one warm session "
             "(dedup, sweep batching, sharded run store)")
    sub.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    sub.add_argument("--port", type=int, default=8765,
                     help="bind port; 0 picks a free one "
                          "(default: 8765)")
    sub.add_argument("--workers", type=int, default=1,
                     help="session worker processes (1 = serial)")
    sub.add_argument("--store", default=None, metavar="DIR",
                     help="ProfileStore directory (warmed StatStack "
                          "tables shared by every request)")
    sub.add_argument("--runs", default=None, metavar="DIR",
                     help="sharded RunStore directory: results cached "
                          "by content key; an existing flat store is "
                          "read and migrated in place")
    sub.add_argument("--max-entries", type=int, default=None,
                     metavar="N",
                     help="LRU cap on stored runs (default: unbounded)")
    sub.add_argument("--max-queue", type=int, default=32, metavar="N",
                     help="in-flight request cap; excess requests get "
                          "503 (default: 32)")
    sub.add_argument("--request-timeout", type=float, default=None,
                     metavar="SEC",
                     help="per-request deadline; 504 on expiry while "
                          "the computation still warms the store "
                          "(default: none)")
    sub.add_argument("--batch-window", type=float, default=0.05,
                     metavar="SEC",
                     help="how long a sweep waits for compatible "
                          "sweeps to merge with (default: 0.05)")
    sub.add_argument("--max-batch", type=int, default=16, metavar="N",
                     help="sweep specs per merged engine pass "
                          "(default: 16)")
    sub.add_argument("--drain-timeout", type=float, default=10.0,
                     metavar="SEC",
                     help="seconds SIGTERM/SIGINT waits for in-flight "
                          "requests (default: 10)")
    _add_model_backend_argument(sub)
    sub.set_defaults(func=cmd_serve)

    sub = subparsers.add_parser(
        "request",
        help="POST an ExperimentSpec JSON file to a running "
             "'repro serve'")
    sub.add_argument("spec", nargs="?", default=None,
                     metavar="spec.json",
                     help="ExperimentSpec JSON file (omit with "
                          "--stats)")
    sub.add_argument("--host", default="127.0.0.1",
                     help="server address (default: 127.0.0.1)")
    sub.add_argument("--port", type=int, default=8765,
                     help="server port (default: 8765)")
    sub.add_argument("--stream", action="store_true",
                     help="stream NDJSON partial results (one JSON "
                          "line per design point) as they are computed")
    sub.add_argument("--stats", action="store_true",
                     help="print the server's GET /stats document and "
                          "exit")
    sub.add_argument("--timeout", type=float, default=None,
                     metavar="SEC",
                     help="socket timeout (default: wait indefinitely)")
    sub.add_argument("--json", default=None, metavar="OUT.json",
                     help="write the full reply as JSON")
    sub.set_defaults(func=cmd_request)

    sub = subparsers.add_parser(
        "stats",
        help="summarize a --trace file: span table + recorded metrics")
    sub.add_argument("trace_file", metavar="TRACE.json",
                     help="trace file written by --trace")
    sub.add_argument("--json", default=None, metavar="OUT.json",
                     help="write the span/metrics summary as JSON")
    sub.set_defaults(func=cmd_stats)

    sub = subparsers.add_parser(
        "lint",
        help="determinism & contract static analysis "
             "(see repro.analysis)")
    sub.add_argument("paths", nargs="*", metavar="PATH",
                     help="files/directories to analyze (default: "
                          "src/repro)")
    sub.add_argument("--baseline", default=None, metavar="FILE.toml",
                     help="baseline file of reviewed, accepted finding "
                          "keys (default: none)")
    sub.add_argument("--rules", action="append", default=None,
                     metavar="RULE",
                     help="run only this rule (repeatable; default: "
                          "all registered rules)")
    sub.add_argument("--json", default=None, metavar="OUT.json",
                     help="also write the machine-readable report")
    sub.set_defaults(func=cmd_lint)

    # The global telemetry flags work before or after the subcommand
    # (SUPPRESS keeps a subcommand-less occurrence authoritative).
    for sub in subparsers.choices.values():
        _add_telemetry_arguments(sub, suppress=True)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    want_metrics = bool(getattr(args, "metrics", False))
    if trace_path is None and not want_metrics:
        return args.func(args)
    # Either flag lights up the whole layer: spans feed both the trace
    # file and the --metrics span table, and the metrics registry
    # feeds the summary and the trace's trailing metrics event.
    telemetry = obs.Telemetry(trace=True, metrics=True)
    with obs.activate(telemetry):
        status = args.func(args)
    if trace_path is not None:
        telemetry.tracer.export(trace_path, metrics=telemetry.metrics)
        print(f"trace -> {trace_path}")
    if want_metrics:
        _render_telemetry(telemetry)
    return status


if __name__ == "__main__":
    sys.exit(main())
