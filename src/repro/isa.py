"""Instruction-set substrate: x86-like macro instructions and micro-ops.

The paper models CISC (x86) processors whose decode stage cracks macro
instructions into micro-operations (uops).  The interval model counts work
in uops, not instructions (thesis §3.2, Fig 3.1: uop/instruction ratios of
roughly 1.07--1.38 across SPEC CPU 2006).

This module defines:

* :class:`UopKind` -- the micro-operation categories the issue stage
  schedules onto functional units (thesis Fig 3.5, Table 3.1).
* :class:`MacroOp` -- macro instruction classes with their uop templates
  (register-register ALU ops crack into one uop; load-op and op-store forms
  crack into two; load-op-store cracks into three).
* :class:`Instruction` -- one dynamic instruction record in a trace.
* :func:`crack` -- macro instruction -> tuple of uop kinds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class UopKind(enum.IntEnum):
    """Micro-operation categories, one per functional-unit type."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    FP_MUL = 3
    DIV = 4
    LOAD = 5
    STORE = 6
    BRANCH = 7
    MOVE = 8

    @property
    def is_memory(self) -> bool:
        return self in (UopKind.LOAD, UopKind.STORE)


#: Default execution latency (cycles) per uop kind on the reference core
#: (thesis §3.4: ALU/branch 1 cycle, loads hitting L1 longer, FP mul 5,
#: divide 5 and non-pipelined).
DEFAULT_UOP_LATENCY = {
    UopKind.INT_ALU: 1,
    UopKind.INT_MUL: 3,
    UopKind.FP_ALU: 3,
    UopKind.FP_MUL: 5,
    UopKind.DIV: 18,
    UopKind.LOAD: 2,
    UopKind.STORE: 1,
    UopKind.BRANCH: 1,
    UopKind.MOVE: 1,
}


class MacroOp(enum.IntEnum):
    """Macro instruction classes with distinct uop cracking templates."""

    INT_ALU = 0          # reg-reg integer op            -> 1 uop
    INT_ALU_LOAD = 1     # load-op form (mem source)     -> 2 uops
    INT_ALU_STORE = 2    # op-store form (mem dest)      -> 2 uops
    INT_MUL = 3
    FP_ALU = 4
    FP_ALU_LOAD = 5      # FP load-op form               -> 2 uops
    FP_MUL = 6
    DIV = 7
    LOAD = 8
    STORE = 9
    BRANCH = 10
    MOVE = 11
    NOP = 12


#: Cracking templates: macro class -> tuple of uop kinds, issued in order.
_CRACK_TABLE: dict = {
    MacroOp.INT_ALU: (UopKind.INT_ALU,),
    MacroOp.INT_ALU_LOAD: (UopKind.LOAD, UopKind.INT_ALU),
    MacroOp.INT_ALU_STORE: (UopKind.INT_ALU, UopKind.STORE),
    MacroOp.INT_MUL: (UopKind.INT_MUL,),
    MacroOp.FP_ALU: (UopKind.FP_ALU,),
    MacroOp.FP_ALU_LOAD: (UopKind.LOAD, UopKind.FP_ALU),
    MacroOp.FP_MUL: (UopKind.FP_MUL,),
    MacroOp.DIV: (UopKind.DIV,),
    MacroOp.LOAD: (UopKind.LOAD,),
    MacroOp.STORE: (UopKind.STORE,),
    MacroOp.BRANCH: (UopKind.BRANCH,),
    MacroOp.MOVE: (UopKind.MOVE,),
    MacroOp.NOP: (UopKind.MOVE,),
}


def crack(op: MacroOp) -> Tuple[UopKind, ...]:
    """Return the micro-op sequence a macro instruction decodes into."""
    return _CRACK_TABLE[op]


def uop_count(op: MacroOp) -> int:
    """Number of micro-ops a macro instruction cracks into."""
    return len(_CRACK_TABLE[op])


@dataclass(frozen=True, slots=True)
class Instruction:
    """One dynamic instruction in a trace.

    Attributes
    ----------
    pc:
        Static instruction address.  Identifies the static instruction for
        branch-entropy and stride profiling.
    op:
        Macro instruction class (determines uop cracking).
    dst:
        Destination architectural register, or ``-1`` when none.
    src1, src2:
        Source architectural registers, ``-1`` when unused.
    addr:
        Effective memory address for loads/stores (byte address), else 0.
    taken:
        Branch outcome; meaningful only when ``op is MacroOp.BRANCH``.
    """

    pc: int
    op: MacroOp
    dst: int = -1
    src1: int = -1
    src2: int = -1
    addr: int = 0
    taken: bool = False

    @property
    def is_branch(self) -> bool:
        return self.op is MacroOp.BRANCH

    @property
    def is_load(self) -> bool:
        return self.op in (
            MacroOp.LOAD,
            MacroOp.INT_ALU_LOAD,
            MacroOp.FP_ALU_LOAD,
        )

    @property
    def is_store(self) -> bool:
        return self.op in (MacroOp.STORE, MacroOp.INT_ALU_STORE)

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    def uops(self) -> Tuple[UopKind, ...]:
        return crack(self.op)

    def uop_count(self) -> int:
        return uop_count(self.op)


#: Number of architectural registers in the modeled ISA (x86-64 integer
#: GPRs + a few; deliberately small as the thesis notes x86's register
#: scarcity lengthens dependence chains, §3.3).
NUM_ARCH_REGS = 16


def mem_level_latency(level: int, config_latencies: Optional[dict] = None) -> int:
    """Access latency (cycles) for cache level ``level`` (1-based) or DRAM.

    ``level == 0`` denotes DRAM.  Provided for convenience in tests.
    """
    default = {1: 4, 2: 12, 3: 30, 0: 200}
    table = config_latencies or default
    return table[level]
