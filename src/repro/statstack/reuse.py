"""Reuse-distance profiling (cache-line granularity, optionally sampled).

A *reuse distance* counts the memory accesses to other cache lines between
two accesses to the same line (thesis Fig 4.1).  Reuse distances need only
a last-access counter per line -- far cheaper than maintaining an LRU stack
-- which is why StatStack profiles reuse distances and converts them to
stack distances statistically.

Sampling follows the thesis (§5.4.1): the access stream is divided into
bursts and only one in ``1/sample_rate`` accesses seeds a tracked reuse;
distances are still exact for the tracked accesses.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.isa import Instruction


@dataclass
class ReuseProfile:
    """Sampled reuse-distance histograms of one access stream.

    Attributes
    ----------
    histogram:
        Combined (loads+stores) reuse distance -> count.  Distances are in
        accesses to other lines; an access with no prior use of its line is
        *cold* and appears in the cold counters instead.
    load_histogram / store_histogram:
        Same, typed by the access that closes the reuse (the access whose
        hit/miss outcome the distance determines).
    cold_loads / cold_stores:
        Sampled accesses whose line was never touched before.
    load_accesses / store_accesses:
        Total (unsampled) access counts, for scaling to MPKI.
    line_size:
        Cache line granularity in bytes.
    """

    histogram: Dict[int, int] = field(default_factory=dict)
    load_histogram: Dict[int, int] = field(default_factory=dict)
    store_histogram: Dict[int, int] = field(default_factory=dict)
    cold_loads: int = 0
    cold_stores: int = 0
    load_accesses: int = 0
    store_accesses: int = 0
    sampled_accesses: int = 0
    line_size: int = 64

    @property
    def total_accesses(self) -> int:
        return self.load_accesses + self.store_accesses

    @property
    def sampled_total(self) -> int:
        """Sampled reuses + sampled cold accesses (histogram mass)."""
        return (
            sum(self.histogram.values()) + self.cold_loads + self.cold_stores
        )


def collect_reuse_profile(
    accesses: Iterable[Tuple[int, bool]],
    line_size: int = 64,
    sample_rate: float = 1.0,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> ReuseProfile:
    """Profile reuse distances over an ``(address, is_write)`` stream.

    With ``sample_rate < 1`` only a random subset of accesses closes
    recorded reuses, mirroring StatStack's burst sampling; distances remain
    exact because the per-line last-access index is updated for every
    access.

    Parameters
    ----------
    accesses:
        Iterable of ``(address, is_write)`` pairs in stream order.
    line_size:
        Cache-line granularity in bytes.
    sample_rate:
        Probability that an access closes a recorded reuse; must be in
        ``(0, 1]``.
    seed:
        Seed of the sampling RNG.  The same ``(accesses, sample_rate,
        seed)`` triple always produces a bitwise-identical profile.
    rng:
        Explicit ``random.Random`` instance; overrides ``seed``.  Pass
        one to share a sampling stream across several collection calls.

    Returns
    -------
    ReuseProfile
        The sampled (or exhaustive) reuse-distance histograms.
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError("sample_rate must be in (0, 1]")
    rng = rng if rng is not None else random.Random(seed)
    profile = ReuseProfile(line_size=line_size)
    last_access: Dict[int, int] = {}
    index = 0
    record_all = sample_rate >= 1.0

    for addr, is_write in accesses:
        line = addr // line_size
        if is_write:
            profile.store_accesses += 1
        else:
            profile.load_accesses += 1

        recorded = record_all or rng.random() < sample_rate
        previous = last_access.get(line)
        if recorded:
            profile.sampled_accesses += 1
            if previous is None:
                if is_write:
                    profile.cold_stores += 1
                else:
                    profile.cold_loads += 1
            else:
                distance = index - previous - 1
                profile.histogram[distance] = (
                    profile.histogram.get(distance, 0) + 1
                )
                typed = (
                    profile.store_histogram if is_write
                    else profile.load_histogram
                )
                typed[distance] = typed.get(distance, 0) + 1
        last_access[line] = index
        index += 1
    return profile


def accesses_from_trace(
    trace: Iterable[Instruction],
) -> Iterable[Tuple[int, bool]]:
    """Adapt an instruction trace to the (address, is_write) data stream."""
    for instr in trace:
        if instr.is_load:
            yield instr.addr, False
        elif instr.is_store:
            yield instr.addr, True


def instruction_stream_from_trace(
    trace: Iterable[Instruction],
) -> Iterable[Tuple[int, bool]]:
    """Adapt a trace to its instruction-fetch address stream (I-cache)."""
    for instr in trace:
        yield instr.pc, False
