"""Reuse-distance profiling (cache-line granularity, optionally sampled).

A *reuse distance* counts the memory accesses to other cache lines between
two accesses to the same line (thesis Fig 4.1).  Reuse distances need only
a last-access counter per line -- far cheaper than maintaining an LRU stack
-- which is why StatStack profiles reuse distances and converts them to
stack distances statistically.

Sampling follows the thesis (§5.4.1): the access stream is divided into
bursts and only one in ``1/sample_rate`` accesses seeds a tracked reuse;
distances are still exact for the tracked accesses.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.isa import Instruction
from repro.workloads.columns import (
    TraceColumns,
    bernoulli_draws,
    count_histogram,
    previous_occurrence,
)


@dataclass
class ReuseProfile:
    """Sampled reuse-distance histograms of one access stream.

    Attributes
    ----------
    histogram:
        Combined (loads+stores) reuse distance -> count.  Distances are in
        accesses to other lines; an access with no prior use of its line is
        *cold* and appears in the cold counters instead.
    load_histogram / store_histogram:
        Same, typed by the access that closes the reuse (the access whose
        hit/miss outcome the distance determines).
    cold_loads / cold_stores:
        Sampled accesses whose line was never touched before.
    load_accesses / store_accesses:
        Total (unsampled) access counts, for scaling to MPKI.
    line_size:
        Cache line granularity in bytes.
    """

    histogram: Dict[int, int] = field(default_factory=dict)
    load_histogram: Dict[int, int] = field(default_factory=dict)
    store_histogram: Dict[int, int] = field(default_factory=dict)
    cold_loads: int = 0
    cold_stores: int = 0
    load_accesses: int = 0
    store_accesses: int = 0
    sampled_accesses: int = 0
    line_size: int = 64

    @property
    def total_accesses(self) -> int:
        return self.load_accesses + self.store_accesses

    @property
    def sampled_total(self) -> int:
        """Sampled reuses + sampled cold accesses (histogram mass)."""
        return (
            sum(self.histogram.values()) + self.cold_loads + self.cold_stores
        )


def collect_reuse_profile(
    accesses: Iterable[Tuple[int, bool]],
    line_size: int = 64,
    sample_rate: float = 1.0,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> ReuseProfile:
    """Profile reuse distances over an ``(address, is_write)`` stream.

    With ``sample_rate < 1`` only a random subset of accesses closes
    recorded reuses, mirroring StatStack's burst sampling; distances remain
    exact because the per-line last-access index is updated for every
    access.

    Parameters
    ----------
    accesses:
        Iterable of ``(address, is_write)`` pairs in stream order, or a
        pre-columnized ``(addresses, is_write)`` pair of NumPy arrays
        (e.g. from :func:`accesses_from_columns`) -- the fast path that
        skips per-access tuple iteration.
    line_size:
        Cache-line granularity in bytes.
    sample_rate:
        Probability that an access closes a recorded reuse; must be in
        ``(0, 1]``.
    seed:
        Seed of the sampling RNG.  The same ``(accesses, sample_rate,
        seed)`` triple always produces a bitwise-identical profile.
    rng:
        Explicit ``random.Random`` instance; overrides ``seed``.  Pass
        one to share a sampling stream across several collection calls.

    Returns
    -------
    ReuseProfile
        The sampled (or exhaustive) reuse-distance histograms.
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError("sample_rate must be in (0, 1]")
    rng = rng if rng is not None else random.Random(seed)
    if isinstance(accesses, tuple) and len(accesses) == 2 and isinstance(
        accesses[0], np.ndarray
    ):
        addr, is_write = accesses
        addr = np.asarray(addr, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
    else:
        records = np.fromiter(
            accesses, dtype=np.dtype([("addr", "i8"), ("w", "?")])
        )
        addr = records["addr"]
        is_write = records["w"]
    return _reuse_profile_from_arrays(
        addr, is_write, line_size=line_size, sample_rate=sample_rate,
        rng=rng,
    )


def reuse_sweep_into(
    profile: ReuseProfile,
    addr: np.ndarray,
    is_write: np.ndarray,
    sample_rate: float,
    rng: Optional[random.Random],
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Vectorized reuse-distance sweep: the shared bitwise-sensitive core.

    Fills ``profile``'s access totals, cold counts and typed histograms
    from the ``(addr, is_write)`` arrays (line granularity taken from
    ``profile.line_size``).  The per-line last-access dictionary becomes
    one stable-argsort predecessor sweep
    (:func:`~repro.workloads.columns.previous_occurrence`) and the
    Bernoulli sampling decision one vectorized compare against draws
    taken from the *scalar* RNG in stream order, so the recorded subset
    -- and hence every histogram, including key insertion order -- is
    bitwise identical to the retained scalar reference
    (:func:`_collect_reuse_profile_scalar`).

    Both :func:`collect_reuse_profile` and the profiler's global reuse
    pass (``repro.profiler.profile._global_reuse_pass``) delegate here,
    so the two can never drift apart.

    Returns
    -------
    tuple of ndarray, or None
        ``(recorded, cold, distance)`` per-access intermediates for
        callers that attribute recorded accesses further (the
        micro-trace attribution pass); ``None`` for an empty stream.
    """
    n = int(addr.shape[0])
    profile.store_accesses = int(np.count_nonzero(is_write))
    profile.load_accesses = n - profile.store_accesses
    if n == 0:
        return None

    prev = previous_occurrence(addr // profile.line_size)
    if sample_rate >= 1.0:
        recorded = np.ones(n, dtype=bool)
    else:
        recorded = bernoulli_draws(rng, n) < sample_rate
    profile.sampled_accesses = int(np.count_nonzero(recorded))

    cold = prev < 0
    profile.cold_stores = int(np.count_nonzero(recorded & cold & is_write))
    profile.cold_loads = int(
        np.count_nonzero(recorded & cold & ~is_write)
    )
    closing = recorded & ~cold
    distance = np.arange(n, dtype=np.int64) - prev - 1
    profile.histogram = count_histogram(distance[closing])
    profile.load_histogram = count_histogram(
        distance[closing & ~is_write]
    )
    profile.store_histogram = count_histogram(
        distance[closing & is_write]
    )
    return recorded, cold, distance


def _reuse_profile_from_arrays(
    addr: np.ndarray,
    is_write: np.ndarray,
    line_size: int,
    sample_rate: float,
    rng: random.Random,
) -> ReuseProfile:
    """Vectorized reuse-distance collection over address/type arrays."""
    profile = ReuseProfile(line_size=line_size)
    reuse_sweep_into(profile, addr, is_write, sample_rate, rng)
    return profile


def _collect_reuse_profile_scalar(
    accesses: Iterable[Tuple[int, bool]],
    line_size: int = 64,
    sample_rate: float = 1.0,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> ReuseProfile:
    """Scalar reference implementation of :func:`collect_reuse_profile`.

    One Python loop with a per-line last-access dictionary -- the
    pre-columnar implementation, kept verbatim as the ground truth the
    vectorized path is property-tested against (bitwise).
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError("sample_rate must be in (0, 1]")
    rng = rng if rng is not None else random.Random(seed)
    profile = ReuseProfile(line_size=line_size)
    last_access: Dict[int, int] = {}
    index = 0
    record_all = sample_rate >= 1.0

    for addr, is_write in accesses:
        line = addr // line_size
        if is_write:
            profile.store_accesses += 1
        else:
            profile.load_accesses += 1

        recorded = record_all or rng.random() < sample_rate
        previous = last_access.get(line)
        if recorded:
            profile.sampled_accesses += 1
            if previous is None:
                if is_write:
                    profile.cold_stores += 1
                else:
                    profile.cold_loads += 1
            else:
                distance = index - previous - 1
                profile.histogram[distance] = (
                    profile.histogram.get(distance, 0) + 1
                )
                typed = (
                    profile.store_histogram if is_write
                    else profile.load_histogram
                )
                typed[distance] = typed.get(distance, 0) + 1
        last_access[line] = index
        index += 1
    return profile


def accesses_from_trace(
    trace: Iterable[Instruction],
) -> Iterable[Tuple[int, bool]]:
    """Adapt an instruction trace to the (address, is_write) data stream."""
    for instr in trace:
        if instr.is_load:
            yield instr.addr, False
        elif instr.is_store:
            yield instr.addr, True


def accesses_from_columns(
    columns: TraceColumns,
) -> Tuple[np.ndarray, np.ndarray]:
    """Adapt columnar trace data to the ``(addresses, is_write)`` arrays.

    The returned pair feeds :func:`collect_reuse_profile` directly (its
    array fast path), skipping per-access tuple creation entirely.
    """
    mem = columns.is_mem
    return columns.addr[mem], columns.is_store[mem]


def instruction_stream_from_trace(
    trace: Iterable[Instruction],
) -> Iterable[Tuple[int, bool]]:
    """Adapt a trace to its instruction-fetch address stream (I-cache)."""
    for instr in trace:
        yield instr.pc, False
