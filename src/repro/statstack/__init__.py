"""StatStack: statistical cache modeling from reuse distances.

Thesis §4.2 (after Eklov & Hagersten): profile a (sampled) reuse-distance
distribution once, transform it to stack distances, and query the miss
ratio of *any* fully-associative LRU cache size -- the micro-architecture
independent replacement for per-configuration cache simulation.
"""

from repro.statstack.reuse import ReuseProfile, collect_reuse_profile
from repro.statstack.model import StatStack

__all__ = ["ReuseProfile", "collect_reuse_profile", "StatStack"]
