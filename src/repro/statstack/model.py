"""The StatStack reuse -> stack distance transform and miss-rate queries.

Given the reuse-distance histogram of an application, the expected stack
distance of a reuse with distance ``d`` is the expected number of *unique*
lines touched inside the reuse window.  An intervening access at position
``i`` inside the window contributes a unique line exactly when its own
forward reuse "arrow" reaches past the window end (thesis Fig 4.1: count
the intersecting arrows), which happens with probability
``P(RD > d - i)``.  Summing over the window:

    E[SD(d)] = sum_{j=0}^{d-1} P(RD > j)

The miss ratio of a fully-associative LRU cache with ``C`` lines is then
the fraction of accesses whose expected stack distance is >= C, plus the
cold accesses (never-reused lines always miss).

Multi-level hierarchies are modeled by querying each level's size
independently (inclusive hierarchy assumption, thesis §4.2).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.statstack.reuse import ReuseProfile

#: Version of the reuse -> stack distance conversion.  Bump whenever
#: :meth:`StatStack._expected_stack_distances` changes so cached tables
#: from older releases are rebuilt instead of silently reused.
TABLES_VERSION = 1


class StatStack:
    """Statistical cache model built from one :class:`ReuseProfile`.

    Parameters
    ----------
    profile:
        The sampled reuse-distance histograms to transform.
    tables:
        Optional precomputed stack-distance tables as returned by
        :meth:`export_tables`.  When the tables match the profile's
        distinct reuse distances, the expensive expected-stack-distance
        pass is skipped; on any mismatch the tables are ignored and the
        model is rebuilt from scratch (so stale caches degrade to a
        recomputation, never to wrong answers).
    """

    def __init__(self, profile: ReuseProfile,
                 tables: Optional[Dict[str, List[float]]] = None) -> None:
        self.profile = profile
        self._build(tables)

    def export_tables(self) -> Dict[str, List[float]]:
        """Serialize the derived stack-distance tables.

        Returns
        -------
        dict
            JSON-compatible mapping with the conversion-algorithm
            ``version``, the distinct reuse ``distances`` with their
            ``counts`` and ``cold`` mass, and the ``expected_sd`` value
            at each distance -- everything :meth:`from_tables` needs to
            both skip the conversion pass and detect staleness.
        """
        return {
            "version": TABLES_VERSION,
            "distances": [int(d) for d in self._distances],
            "counts": [float(c) for c in self._counts],
            "cold": int(
                self.profile.cold_loads + self.profile.cold_stores
            ),
            "expected_sd": [float(v) for v in self._expected_sd],
        }

    @classmethod
    def from_tables(
        cls, profile: ReuseProfile, tables: Dict[str, List[float]]
    ) -> "StatStack":
        """Build a model, reusing cached tables when they still apply."""
        return cls(profile, tables=tables)

    def _tables_match(self, tables: Dict[str, List[float]]) -> bool:
        if tables.get("version") != TABLES_VERSION:
            return False
        distances = tables.get("distances")
        counts = tables.get("counts")
        expected = tables.get("expected_sd")
        if distances is None or counts is None or expected is None:
            return False
        cold = self.profile.cold_loads + self.profile.cold_stores
        if tables.get("cold") != cold:
            return False
        n = self._distances.size
        if len(distances) != n or len(counts) != n or len(expected) != n:
            return False
        return all(
            int(a) == int(b) for a, b in zip(distances, self._distances)
        ) and all(
            float(a) == float(b) for a, b in zip(counts, self._counts)
        )

    def _build(self, tables: Optional[Dict[str, List[float]]] = None) -> None:
        histogram = self.profile.histogram
        if histogram:
            distances = np.array(sorted(histogram), dtype=np.int64)
            counts = np.array(
                [histogram[d] for d in distances], dtype=np.float64
            )
        else:
            distances = np.zeros(0, dtype=np.int64)
            counts = np.zeros(0, dtype=np.float64)
        total = counts.sum()
        cold = self.profile.cold_loads + self.profile.cold_stores
        self._distances = distances
        self._counts = counts
        self._total_reuses = float(total)
        self._total_sampled = float(total + cold)

        # Survival function P(RD > j), evaluated at the distinct distances.
        if total > 0:
            tail = np.concatenate(
                [counts[::-1].cumsum()[::-1][1:], [0.0]]
            )
            # P(RD > distances[k]) = (count of reuses with RD > distances[k]
            #                          + cold accesses) / all sampled
            # Cold accesses behave as infinite reuse distance.
            self._surv_at = (tail + cold) / self._total_sampled
        else:
            self._surv_at = np.zeros(0)

        # Expected stack distance per distinct reuse distance:
        #   E[SD(d)] = sum_{j=0}^{d-1} P(RD > j)
        # P(RD > j) is a step function, constant between distinct distances,
        # so the sum telescopes over segments.
        if tables is not None and self._tables_match(tables):
            self._expected_sd = np.array(
                tables["expected_sd"], dtype=np.float64
            )
        else:
            self._expected_sd = self._expected_stack_distances()

    def _survival(self, j: float) -> float:
        """P(RD > j) from the sampled histogram (cold = infinite RD)."""
        if self._total_sampled == 0:
            return 0.0
        if self._distances.size == 0:
            return (
                (self.profile.cold_loads + self.profile.cold_stores)
                / self._total_sampled
            )
        index = bisect.bisect_left(self._distances, j)
        if index == len(self._distances):
            cold = self.profile.cold_loads + self.profile.cold_stores
            return cold / self._total_sampled
        if self._distances[index] == j:
            return float(self._surv_at[index])
        # j below distances[index]: P(RD > j) counts everything at
        # distances[index] and beyond, plus cold.
        if index == 0:
            prior_mass = 0.0
        else:
            prior_mass = float(self._counts[:index].sum())
        cold = self.profile.cold_loads + self.profile.cold_stores
        return (self._total_reuses - prior_mass + cold) / self._total_sampled

    def _expected_stack_distances(self) -> np.ndarray:
        """E[SD] at each distinct reuse distance (vectorized prefix sums)."""
        n = self._distances.size
        if n == 0:
            return np.zeros(0)
        cold = self.profile.cold_loads + self.profile.cold_stores
        total = self._total_sampled
        # Segment boundaries: [0, d_0], (d_0, d_1], ... P(RD > j) is
        # constant within (d_{k-1}, d_k]: it equals
        # (reuses with RD > d_{k-1}) adjusted... We evaluate stepwise:
        # for j in [0, d_0): P = (all reuses + cold)/total  (RD >= 0 ... > j
        #   means all, since min distance is d_0 >= 0 -> RD > j for j < d_0
        #   except reuses exactly at smaller distances -- none below d_0).
        # Between consecutive distinct distances the survival is constant.
        expected = np.zeros(n)
        running = 0.0
        prev_d = 0
        mass_below = 0.0  # reuses with RD <= previous boundary
        for k in range(n):
            d = int(self._distances[k])
            # For j in [prev_d, d): P(RD > j) = (total_reuses - mass_below
            #                                     + cold) / total
            surv = (self._total_reuses - mass_below + cold) / total
            running += surv * (d - prev_d)
            expected[k] = running
            mass_below += float(self._counts[k])
            prev_d = d
        return expected

    def expected_stack_distance(self, reuse_distance: int) -> float:
        """E[SD] for one reuse distance."""
        if self._distances.size == 0:
            return 0.0
        index = bisect.bisect_left(self._distances, reuse_distance)
        if index < len(self._distances) and (
            self._distances[index] == reuse_distance
        ):
            return float(self._expected_sd[index])
        # Interpolate a non-profiled distance by extending from the
        # previous boundary with the local survival value.
        cold = self.profile.cold_loads + self.profile.cold_stores
        if index == 0:
            surv = (self._total_reuses + cold) / max(self._total_sampled, 1.0)
            return surv * reuse_distance
        prev_d = int(self._distances[index - 1])
        base = float(self._expected_sd[index - 1])
        mass_below = float(self._counts[:index].sum())
        surv = (self._total_reuses - mass_below + cold) / self._total_sampled
        return base + surv * (reuse_distance - prev_d)

    # ------------------------------------------------------------------
    # Miss-rate queries
    # ------------------------------------------------------------------

    def _typed_histogram(self, kind: str) -> Dict[int, int]:
        if kind == "load":
            return self.profile.load_histogram
        if kind == "store":
            return self.profile.store_histogram
        if kind == "all":
            return self.profile.histogram
        raise ValueError(f"kind must be load/store/all, got {kind!r}")

    def _typed_cold(self, kind: str) -> int:
        if kind == "load":
            return self.profile.cold_loads
        if kind == "store":
            return self.profile.cold_stores
        return self.profile.cold_loads + self.profile.cold_stores

    def miss_ratio_of(
        self,
        histogram: Dict[int, int],
        cold: int,
        cache_bytes: int,
        include_cold: bool = True,
    ) -> float:
        """Miss ratio for an arbitrary reuse histogram.

        The survival transform (hence the reuse->stack mapping) is the
        *global* one; the histogram selects which accesses are queried.
        Used for per-micro-trace miss ratios in the per-sample model
        evaluation (TC'16 extension).
        """
        cache_lines = max(1, cache_bytes // self.profile.line_size)
        total = sum(histogram.values()) + cold
        if total == 0:
            return 0.0
        missing = cold if include_cold else 0
        for distance, count in histogram.items():
            if self.expected_stack_distance(distance) >= cache_lines:
                missing += count
        return missing / total

    def miss_ratio(
        self,
        cache_bytes: int,
        kind: str = "all",
        include_cold: bool = True,
    ) -> float:
        """Miss ratio of a fully-associative LRU cache of ``cache_bytes``.

        ``kind`` selects which access type's outcome is queried; reuse
        windows always span the combined stream (a load's stack distance
        counts intervening stores too).
        """
        return self.miss_ratio_of(
            self._typed_histogram(kind),
            self._typed_cold(kind),
            cache_bytes,
            include_cold=include_cold,
        )

    def misses(
        self,
        cache_bytes: int,
        kind: str = "load",
        include_cold: bool = True,
    ) -> float:
        """Estimated absolute miss count, scaled to the full stream."""
        ratio = self.miss_ratio(cache_bytes, kind=kind,
                                include_cold=include_cold)
        if kind == "load":
            return ratio * self.profile.load_accesses
        if kind == "store":
            return ratio * self.profile.store_accesses
        return ratio * self.profile.total_accesses

    def mpki(
        self,
        cache_bytes: int,
        instructions: int,
        kind: str = "all",
        include_cold: bool = True,
    ) -> float:
        """Estimated misses per kilo-instruction for one cache size."""
        if instructions == 0:
            return 0.0
        return 1000.0 * self.misses(
            cache_bytes, kind=kind, include_cold=include_cold
        ) / instructions

    def hierarchy_miss_ratios(
        self,
        level_bytes: Sequence[int],
        kind: str = "all",
        include_cold: bool = True,
    ) -> List[float]:
        """Per-level miss ratios, each level modeled independently."""
        return [
            self.miss_ratio(size, kind=kind, include_cold=include_cold)
            for size in level_bytes
        ]
