"""On-disk, content-addressed store of experiment run results.

The run-level twin of the profile-level
:class:`~repro.profiler.serialization.ProfileStore`: results are keyed
by the *spec* fingerprint (what was asked), so a multi-experiment
campaign (:meth:`~repro.api.session.Session.run_many`) can skip every
run whose spec it has already computed -- results are deterministic at
any worker count, which is what makes the spec a sufficient key.

Layout: ``<root>/<spec-fingerprint>.run.json`` holds one serialized
:class:`~repro.api.results.RunResult`.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.api.results import RunResult
from repro.api.spec import ExperimentSpec, SpecError

__all__ = ["RunStore"]


class RunStore:
    """Content-addressed on-disk cache of :class:`RunResult` artifacts.

    Parameters
    ----------
    root:
        Directory for the store; created on first write.

    Examples
    --------
    >>> store = RunStore(".run-store")                 # doctest: +SKIP
    >>> store.get(spec) is None                        # doctest: +SKIP
    True
    >>> store.put(session.run(spec))                   # doctest: +SKIP
    >>> store.get(spec).cached                         # doctest: +SKIP
    False
    """

    def __init__(self, root: str) -> None:
        self.root = root

    def path(self, key: Union[str, ExperimentSpec]) -> str:
        """Path of the stored run for a spec (or spec fingerprint)."""
        if isinstance(key, ExperimentSpec):
            key = key.fingerprint
        return os.path.join(self.root, f"{key}.run.json")

    def __contains__(self, key: Union[str, ExperimentSpec]) -> bool:
        """Whether a result for this spec/fingerprint is stored."""
        return os.path.exists(self.path(key))

    def get(
        self,
        spec: ExperimentSpec,
        key: Optional[str] = None,
    ) -> Optional[RunResult]:
        """The stored result for ``spec``, or ``None``.

        ``key`` overrides the lookup fingerprint -- the session passes
        a content-aware key here when the spec references files (see
        :meth:`~repro.api.session.Session.run_key`), so edits to a
        referenced profile or space file miss instead of serving stale
        results.  Unreadable or stale-format entries also count as
        misses (the caller recomputes and overwrites them), so a
        corrupted store heals itself instead of failing campaigns.
        """
        path = self.path(key if key is not None else spec)
        if not os.path.exists(path):
            return None
        try:
            return RunResult.load(path)
        except (OSError, ValueError, KeyError, SpecError):
            return None

    def put(self, result: RunResult, key: Optional[str] = None) -> str:
        """Store one result (overwrites) and return its store key."""
        if key is None:
            key = result.spec_fingerprint
        os.makedirs(self.root, exist_ok=True)
        result.save(self.path(key))
        return key
