"""On-disk, content-addressed store of experiment run results.

The run-level twin of the profile-level
:class:`~repro.profiler.serialization.ProfileStore`: results are keyed
by the *spec* fingerprint (what was asked), so a multi-experiment
campaign (:meth:`~repro.api.session.Session.run_many`) can skip every
run whose spec it has already computed -- results are deterministic at
any worker count, which is what makes the spec a sufficient key.

Layout: ``<root>/<spec-fingerprint>.run.json`` holds one serialized
:class:`~repro.api.results.RunResult`.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Optional, Union

from repro.api.results import RunResult
from repro.api.spec import ExperimentSpec, SpecError
from repro.faults import inject
from repro.faults.atomic import atomic_write

__all__ = ["RunStore"]

logger = logging.getLogger(__name__)


class RunStore:
    """Content-addressed on-disk cache of :class:`RunResult` artifacts.

    Parameters
    ----------
    root:
        Directory for the store; created on first write.

    Examples
    --------
    >>> store = RunStore(".run-store")                 # doctest: +SKIP
    >>> store.get(spec) is None                        # doctest: +SKIP
    True
    >>> store.put(session.run(spec))                   # doctest: +SKIP
    >>> store.get(spec).cached                         # doctest: +SKIP
    False

    The store keeps lifetime accounting as plain ints -- ``hits`` /
    ``misses`` / ``corrupt`` / ``quarantined`` / ``puts`` -- published
    into a metrics registry via :meth:`flush_metrics`.  Counter updates
    are guarded by an internal lock so concurrent readers/writers (the
    ``repro serve`` thread-pool path) never lose increments; reading
    the plain ints without the lock stays fine for reporting.  A *corrupt*
    entry (file exists but cannot be loaded) is served as a miss so
    campaigns heal by recomputing, counted and logged as a warning, and
    *quarantined*: renamed to ``<entry>.corrupt`` so it stops shadowing
    the slot (the recomputed result lands cleanly) while the bad bytes
    stay on disk for post-mortem.  Writes go through
    :func:`~repro.faults.atomic.atomic_write`, so a crash mid-``put``
    never leaves a half-written entry behind.
    """

    #: Plain-int accounting attributes published by
    #: :meth:`flush_metrics` (subclasses may extend this tuple).
    _COUNTER_ATTRS = ("hits", "misses", "corrupt", "quarantined",
                      "puts")

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.quarantined = 0
        self.puts = 0
        self._flushed = {attr: 0 for attr in self._COUNTER_ATTRS}
        self._lock = threading.Lock()

    def _count(self, attr: str, value: int = 1) -> int:
        """Increment one accounting counter under the store lock.

        Returns the post-increment value (``put`` folds it into the
        fault-injection site label, which must be race-free too).
        """
        with self._lock:
            total = getattr(self, attr) + value
            setattr(self, attr, total)
        return total

    def path(self, key: Union[str, ExperimentSpec]) -> str:
        """Path of the stored run for a spec (or spec fingerprint)."""
        if isinstance(key, ExperimentSpec):
            key = key.fingerprint
        return os.path.join(self.root, f"{key}.run.json")

    def __contains__(self, key: Union[str, ExperimentSpec]) -> bool:
        """Whether a result for this spec/fingerprint is stored."""
        return os.path.exists(self.path(key))

    def get(
        self,
        spec: ExperimentSpec,
        key: Optional[str] = None,
    ) -> Optional[RunResult]:
        """The stored result for ``spec``, or ``None``.

        ``key`` overrides the lookup fingerprint -- the session passes
        a content-aware key here when the spec references files (see
        :meth:`~repro.api.session.Session.run_key`), so edits to a
        referenced profile or space file miss instead of serving stale
        results.  Unreadable or stale-format entries also count as
        misses (the caller recomputes and overwrites them) and are
        quarantined to a ``.corrupt`` sidecar, so a corrupted store
        heals itself instead of failing campaigns -- and instead of
        re-parsing the same broken bytes on every later lookup.
        """
        path = self.path(key if key is not None else spec)
        if not os.path.exists(path):
            self._count("misses")
            return None
        try:
            result = RunResult.load(path)
        except (OSError, ValueError, KeyError, SpecError) as exc:
            self._count("corrupt")
            self._count("misses")
            self._quarantine(path, exc)
            return None
        self._count("hits")
        return result

    def _quarantine(self, path: str, exc: Exception) -> None:
        """Move a corrupt entry aside so the slot reads as a clean miss."""
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            logger.warning(
                "corrupt run-store entry %s (%s: %s); recomputing "
                "(quarantine rename failed)",
                path, type(exc).__name__, exc,
            )
            return
        self._count("quarantined")
        logger.warning(
            "corrupt run-store entry %s (%s: %s); quarantined to "
            "%s.corrupt, recomputing",
            path, type(exc).__name__, exc, path,
        )

    def put(self, result: RunResult, key: Optional[str] = None) -> str:
        """Store one result (overwrites) and return its store key.

        Telemetry attached to the result is *not* stored: the store is
        content-addressed by what was computed, and stored bytes must
        be identical whether or not telemetry was enabled for the run.
        The write is atomic (temp file + rename), so a crash here
        leaves either the previous entry or the new one, never a
        truncated file.
        """
        if key is None:
            key = result.spec_fingerprint
        path = self.path(key)
        serial = self._count("puts")
        with atomic_write(path) as handle:
            result.save(handle, include_telemetry=False)
        inject.store_site(path, f"run_store:{key}:{serial}")
        return key

    def flush_metrics(self, metrics) -> None:
        """Publish store counters accumulated since the last flush.

        Increments ``run_store.hits`` / ``run_store.misses`` /
        ``run_store.corrupt`` / ``run_store.quarantined`` /
        ``run_store.puts`` on ``metrics`` by the deltas since the
        previous flush (repeated flushing never double-counts).
        Flushing into a disabled registry is a no-op that keeps the
        deltas pending.
        """
        if not metrics.enabled:
            return
        for attr in self._COUNTER_ATTRS:
            with self._lock:
                value = getattr(self, attr)
                delta = value - self._flushed[attr]
                self._flushed[attr] = value
            if delta:
                metrics.inc(f"run_store.{attr}", delta)
