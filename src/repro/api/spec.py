"""Declarative, JSON-round-trippable experiment specifications.

An :class:`ExperimentSpec` names one experiment *kind* --
``profile | predict | sweep | search | validate | dvfs`` -- plus the
parameters that fully determine its result, mirroring the CLI flags of
the corresponding ``repro`` subcommand.  Specs normalize to a canonical
fully-defaulted form, so two specs describing the same experiment have
the same content-addressed fingerprint no matter how sparsely they were
written; that fingerprint is the cache key of the on-disk
:class:`~repro.api.runstore.RunStore`.

Execution resources (worker counts, pools, caches, telemetry) are
deliberately *not* part of a spec: results are bitwise identical at any
worker count and whether or not the run was observed (``--trace`` /
``--metrics``), so the same experiment run on a different machine shape
is still the same experiment.

Examples
--------
>>> spec = ExperimentSpec("sweep", workloads=["gcc"], limit=16)
>>> spec.params["objective"] is None
True
>>> ExperimentSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Mapping, Optional, Union

from repro.profiler.serialization import canonical_fingerprint

__all__ = ["ExperimentSpec", "SpecError", "EXPERIMENT_KINDS",
           "SPEC_FORMAT_VERSION"]


class SpecError(ValueError):
    """An :class:`ExperimentSpec` is malformed or inconsistent."""


#: Sentinel default marking a parameter the caller must supply.
_REQUIRED = object()

#: Machine-configuration override parameters shared by the kinds that
#: evaluate a single base configuration (mirrors the CLI's
#: ``--width/--rob/--llc-mb/--frequency/--prefetch`` flags).
_CONFIG_OVERRIDES: Dict[str, Any] = {
    "width": None,
    "rob": None,
    "llc_mb": None,
    "frequency": None,
    "prefetch": False,
}

#: Trace-generation + profiling parameters used when an experiment
#: names *workloads* (profiled lazily through the session registry)
#: instead of on-disk profile files.
_PROFILING: Dict[str, Any] = {
    "instructions": 50_000,
    "micro_trace": 1000,
    "window": 5000,
    "trace_seed": 42,
    "reuse_sample_rate": 1.0,
    "reuse_seed": 0,
}

#: Per-kind parameter schema: name -> default (``_REQUIRED`` when the
#: caller must supply a value).  Unknown parameters are rejected.
_SCHEMAS: Dict[str, Dict[str, Any]] = {
    "profile": {
        "workloads": _REQUIRED,
        "output": None,
        "store": None,
        "instructions": 50_000,
        "micro_trace": 1000,
        "window": 5000,
        "seed": 42,
        "reuse_sample_rate": 1.0,
        "reuse_seed": 0,
    },
    "predict": {
        "profile": None,
        "workload": None,
        "mlp_model": "stride",
        **_CONFIG_OVERRIDES,
        **_PROFILING,
    },
    "sweep": {
        "profiles": None,
        "workloads": None,
        "space": None,
        "objective": None,
        "limit": None,
        **_PROFILING,
    },
    "search": {
        "profiles": None,
        "workloads": None,
        "space": None,
        "optimizer": "ga",
        "objective": "edp",
        "power_cap": None,
        "budget": 200,
        "seed": 0,
        "population": None,
        "batch_size": None,
        **_PROFILING,
    },
    "validate": {
        "workloads": _REQUIRED,
        "space": None,
        "limit": None,
        "instructions": 20_000,
        "micro_trace": 1000,
        "window": 5000,
        "trace_seed": 42,
        "train_fraction": 0.25,
        "seed": 0,
    },
    "dvfs": {
        "profile": None,
        "workload": None,
        "frequencies": None,
        "power_cap": None,
        **_CONFIG_OVERRIDES,
        **_PROFILING,
    },
}

#: The experiment kinds a :class:`~repro.api.session.Session` can run.
EXPERIMENT_KINDS = tuple(sorted(_SCHEMAS))

#: Spec format version written by :meth:`ExperimentSpec.to_dict`.
SPEC_FORMAT_VERSION = 1


def _check_kind_semantics(kind: str, params: Dict[str, Any]) -> None:
    """Kind-specific consistency checks beyond the schema shape."""
    if kind in ("predict", "dvfs"):
        given = [key for key in ("profile", "workload")
                 if params[key] is not None]
        if len(given) != 1:
            raise SpecError(
                f"{kind} spec needs exactly one of 'profile' (a file "
                f"path) or 'workload' (a suite name), got {given or None}"
            )
    if kind in ("sweep", "search"):
        if not params["profiles"] and not params["workloads"]:
            raise SpecError(
                f"{kind} spec needs 'profiles' (file paths) and/or "
                f"'workloads' (suite names)"
            )
    if kind == "search":
        from repro.explore.search import OBJECTIVES, OPTIMIZERS

        if params["optimizer"] not in OPTIMIZERS:
            raise SpecError(
                f"unknown optimizer {params['optimizer']!r} "
                f"(choose from {sorted(OPTIMIZERS)})"
            )
        if params["objective"] not in OBJECTIVES:
            raise SpecError(
                f"unknown objective {params['objective']!r} "
                f"(choose from {sorted(OBJECTIVES)})"
            )
        if params["budget"] < 1:
            raise SpecError("budget must be >= 1")
        if (params["population"] is not None
                and params["optimizer"] != "ga"):
            raise SpecError("population only applies to the ga optimizer")
        if params["batch_size"] is not None and params["optimizer"] == "ga":
            raise SpecError("use population for the ga batch size")
    if kind == "sweep" and params["objective"] is not None:
        from repro.explore.search import OBJECTIVES

        if params["objective"] not in OBJECTIVES:
            raise SpecError(
                f"unknown objective {params['objective']!r} "
                f"(choose from {sorted(OBJECTIVES)})"
            )
    if kind in ("sweep", "validate"):
        if params["limit"] is not None and params["limit"] < 0:
            raise SpecError("--limit must be >= 0")
    if kind == "validate":
        if not 0.0 <= params["train_fraction"] < 1.0:
            raise SpecError("--train-fraction must be in [0, 1)")
    if kind == "profile":
        if params["output"] is not None and len(params["workloads"]) > 1:
            raise SpecError(
                "output profiles exactly one workload; use store "
                "(or the session registry) for batches"
            )


def _name_list(kind: str, key: str, value: Any) -> List[str]:
    """Normalize a workload/profile list parameter (str -> [str])."""
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, (list, tuple))
            or not all(isinstance(item, str) for item in value)):
        raise SpecError(
            f"{kind} spec parameter {key!r} must be a list of strings"
        )
    return list(value)


class ExperimentSpec:
    """One declarative experiment: a kind plus normalized parameters.

    Parameters
    ----------
    kind:
        One of :data:`EXPERIMENT_KINDS`.
    params:
        Parameter mapping (merged with ``**kwargs``); every omitted
        parameter takes its schema default, unknown names raise
        :class:`SpecError`.
    **kwargs:
        Parameters given directly as keyword arguments.

    Examples
    --------
    >>> ExperimentSpec("validate", workloads=["gcc"], limit=4).kind
    'validate'
    """

    __slots__ = ("kind", "params")

    def __init__(
        self,
        kind: str,
        params: Optional[Mapping[str, Any]] = None,
        **kwargs: Any,
    ) -> None:
        if kind not in _SCHEMAS:
            raise SpecError(
                f"unknown experiment kind {kind!r} "
                f"(choose from {list(EXPERIMENT_KINDS)})"
            )
        schema = _SCHEMAS[kind]
        merged: Dict[str, Any] = dict(params or {})
        merged.update(kwargs)
        unknown = sorted(set(merged) - set(schema))
        if unknown:
            raise SpecError(
                f"unknown {kind} spec parameter(s): {', '.join(unknown)}"
            )
        full: Dict[str, Any] = {}
        for key, default in schema.items():
            if key in merged:
                full[key] = merged[key]
            elif default is _REQUIRED:
                raise SpecError(f"{kind} spec requires {key!r}")
            else:
                full[key] = default
        for key in ("workloads", "profiles"):
            if key in full and full[key] is not None:
                full[key] = _name_list(kind, key, full[key])
        if kind == "dvfs" and full["frequencies"] is not None:
            try:
                full["frequencies"] = [
                    float(f) for f in full["frequencies"]
                ]
            except (TypeError, ValueError):
                raise SpecError(
                    "frequencies must be a list of numbers (GHz)"
                ) from None
        _check_kind_semantics(kind, full)
        self.kind = kind
        self.params = full

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serializable canonical form (all defaults filled)."""
        return {
            "format_version": SPEC_FORMAT_VERSION,
            "kind": self.kind,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or any sparse
        ``{"kind": ..., "params": {...}}`` mapping)."""
        if not isinstance(data, Mapping):
            raise SpecError("spec must be a JSON object")
        version = data.get("format_version", SPEC_FORMAT_VERSION)
        if version != SPEC_FORMAT_VERSION:
            raise SpecError(f"unsupported spec format version {version!r}")
        if "kind" not in data:
            raise SpecError("spec is missing 'kind'")
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise SpecError("spec 'params' must be a JSON object")
        return cls(data["kind"], params)

    @classmethod
    def coerce(
        cls, spec: Union["ExperimentSpec", Mapping[str, Any]]
    ) -> "ExperimentSpec":
        """``spec`` itself, or a spec built from a plain mapping."""
        if isinstance(spec, cls):
            return spec
        return cls.from_dict(spec)

    def save(self, file: Union[str, IO[str]]) -> None:
        """Write the spec as JSON (path or open handle)."""
        data = self.to_dict()
        if isinstance(file, str):
            with open(file, "w") as handle:
                json.dump(data, handle, indent=2, sort_keys=True)
        else:
            json.dump(data, file, indent=2, sort_keys=True)

    @classmethod
    def load(cls, file: Union[str, IO[str]]) -> "ExperimentSpec":
        """Read a spec back from a JSON file (path or open handle)."""
        if isinstance(file, str):
            with open(file) as handle:
                data = json.load(handle)
        else:
            data = json.load(file)
        return cls.from_dict(data)

    # ------------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Content hash of the canonical form (the run-store key).

        Sparse and fully-spelled versions of the same experiment hash
        identically because defaults are filled before hashing.
        """
        return canonical_fingerprint(
            {"kind": self.kind, "params": self.params}
        )

    def __eq__(self, other: object) -> bool:
        """Specs are equal when kind and normalized params match."""
        if not isinstance(other, ExperimentSpec):
            return NotImplemented
        return self.kind == other.kind and self.params == other.params

    def __hash__(self) -> int:
        """Hash of the content fingerprint."""
        return hash(self.fingerprint)

    def __repr__(self) -> str:
        """Compact debugging form: kind plus non-default params."""
        schema = _SCHEMAS[self.kind]
        sparse = {
            key: value for key, value in self.params.items()
            if schema[key] is _REQUIRED or value != schema[key]
        }
        inner = ", ".join(f"{k}={v!r}" for k, v in sparse.items())
        return f"ExperimentSpec({self.kind!r}, {inner})"
