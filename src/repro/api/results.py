"""The unified run artifact: one result type for every experiment kind.

Before the API layer, each CLI subcommand produced its own ad-hoc dict
(or only text).  :class:`RunResult` unifies them: the spec that produced
the run, the kind, and a JSON-serializable ``data`` payload whose shape
is fixed per kind (see :class:`~repro.api.session.Session` for the
per-kind payloads).  Results round-trip through JSON bit-exactly and
carry a content-addressed fingerprint, so campaigns can be archived,
diffed and de-duplicated like profiles in the
:class:`~repro.profiler.serialization.ProfileStore`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Mapping, Union

from repro.api.spec import ExperimentSpec, SpecError
from repro.profiler.serialization import canonical_fingerprint

__all__ = ["RunResult", "RESULT_FORMAT_VERSION"]

#: Run-result format version written by :meth:`RunResult.to_dict`.
RESULT_FORMAT_VERSION = 1


class RunResult:
    """The outcome of one :meth:`~repro.api.session.Session.run` call.

    Parameters
    ----------
    spec:
        The :class:`~repro.api.spec.ExperimentSpec` that produced this
        result.
    data:
        The kind-specific JSON-serializable payload.
    cached:
        Runtime-only flag: ``True`` when this result was returned from
        a :class:`~repro.api.runstore.RunStore` instead of being
        computed.  Not serialized.
    telemetry:
        Optional observability block attached by the session when
        telemetry is enabled (``{"spans": ..., "metrics": ...}``).
        Serialized by :meth:`to_dict` when present, but *excluded* from
        :attr:`fingerprint` and from run-store bytes: what was computed
        is identical whether or not it was observed.

    Examples
    --------
    >>> result = session.run(spec)                     # doctest: +SKIP
    >>> RunResult.from_dict(result.to_dict()).fingerprint \\
    ...     == result.fingerprint                      # doctest: +SKIP
    True
    """

    __slots__ = ("spec", "data", "cached", "telemetry")

    def __init__(
        self,
        spec: ExperimentSpec,
        data: Dict[str, Any],
        cached: bool = False,
        telemetry: "Dict[str, Any] | None" = None,
    ) -> None:
        self.spec = spec
        self.data = data
        self.cached = cached
        self.telemetry = telemetry

    @property
    def kind(self) -> str:
        """The experiment kind that produced this result."""
        return self.spec.kind

    @property
    def spec_fingerprint(self) -> str:
        """The producing spec's content fingerprint (run-store key)."""
        return self.spec.fingerprint

    @property
    def fingerprint(self) -> str:
        """Content hash of the computed artifact (spec + payload).

        Telemetry never participates: observing a run must not change
        its identity.
        """
        return canonical_fingerprint(self.to_dict(include_telemetry=False))

    # ------------------------------------------------------------------

    def to_dict(self, include_telemetry: bool = True) -> Dict[str, Any]:
        """The JSON-serializable artifact (excludes runtime flags).

        The ``telemetry`` block is included only when one is attached
        and ``include_telemetry`` is true; the fingerprint and the run
        store always serialize without it.
        """
        artifact: Dict[str, Any] = {
            "format_version": RESULT_FORMAT_VERSION,
            "kind": self.kind,
            "spec": self.spec.to_dict(),
            "data": self.data,
        }
        if include_telemetry and self.telemetry is not None:
            artifact["telemetry"] = self.telemetry
        return artifact

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        version = data.get("format_version")
        if version != RESULT_FORMAT_VERSION:
            raise SpecError(
                f"unsupported run-result format version {version!r}"
            )
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            data=dict(data["data"]),
            telemetry=data.get("telemetry"),
        )

    def save(
        self,
        file: Union[str, IO[str]],
        include_telemetry: bool = True,
    ) -> None:
        """Write the artifact as JSON (path or open handle).

        ``include_telemetry=False`` omits any attached telemetry block
        (the run store uses this so stored bytes never depend on
        whether a run was observed).
        """
        data = self.to_dict(include_telemetry=include_telemetry)
        if isinstance(file, str):
            with open(file, "w") as handle:
                json.dump(data, handle, indent=2)
        else:
            json.dump(data, file, indent=2)

    @classmethod
    def load(cls, file: Union[str, IO[str]]) -> "RunResult":
        """Read an artifact back from a JSON file (path or handle)."""
        if isinstance(file, str):
            with open(file) as handle:
                data = json.load(handle)
        else:
            data = json.load(file)
        return cls.from_dict(data)

    def __repr__(self) -> str:
        """Compact debugging form."""
        suffix = " cached" if self.cached else ""
        return (f"RunResult(kind={self.kind!r}, "
                f"spec={self.spec_fingerprint[:12]}{suffix})")
