"""The programmatic front door: Session + declarative ExperimentSpec.

One import gives the whole pipeline as a library::

    from repro.api import ExperimentSpec, Session

    with Session(workers=4, profile_store=".cache") as session:
        profile = session.run(ExperimentSpec(
            "profile", workloads=["gcc", "mcf"]))
        sweep = session.run(ExperimentSpec(
            "sweep", workloads=["gcc", "mcf"], objective="edp"))
        report = session.run(ExperimentSpec(
            "validate", workloads=["gcc"], limit=16))

Everything the stages share -- the worker pool, the model caches, the
profile store, the lazily-profiled workload registry -- lives on the
:class:`Session` and stays warm across runs; experiments are
JSON-round-trippable :class:`ExperimentSpec` values and results are
unified :class:`RunResult` artifacts, cacheable on disk in a
:class:`RunStore`.  The ``repro`` CLI is a thin adapter over this
package, and ``repro run spec.json`` executes specs directly.
"""

from repro.api.pool import WorkerPool, WorkerPoolError
from repro.api.results import RunResult
from repro.api.runstore import RunStore
from repro.api.session import Session, config_from_overrides
from repro.api.spec import EXPERIMENT_KINDS, ExperimentSpec, SpecError

__all__ = [
    "EXPERIMENT_KINDS",
    "ExperimentSpec",
    "RunResult",
    "RunStore",
    "Session",
    "SpecError",
    "WorkerPool",
    "WorkerPoolError",
    "config_from_overrides",
]
