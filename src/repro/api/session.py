"""The long-lived programmatic front door: ``Session.run(spec)``.

The paper's value is a *pipeline* -- profile once, then drive model
prediction, design-space filtering and simulator validation off the
same profile.  :class:`Session` owns the resources every stage of that
pipeline shares:

* one persistent :class:`~repro.api.pool.WorkerPool` reused by the
  model-side :class:`~repro.explore.engine.SweepEngine` and the
  simulator-side :class:`~repro.explore.validate.SimulationSweep`
  (instead of one ``multiprocessing.Pool`` per call);
* one :class:`~repro.core.interval.ModelCache` per analytical-model
  variant, kept warm across experiments;
* an optional warmed
  :class:`~repro.profiler.serialization.ProfileStore` (on-disk
  StatStack tables) and :class:`~repro.api.runstore.RunStore`
  (on-disk run results, keyed by spec fingerprint);
* a lazily-profiled workload registry: experiments that name suite
  workloads instead of profile files trigger trace generation and
  profiling at most once per distinct profiling-parameter set.

Experiments are described declaratively by
:class:`~repro.api.spec.ExperimentSpec` and executed by
:meth:`Session.run`, which returns a unified, JSON-round-trippable
:class:`~repro.api.results.RunResult`.  Every result is bitwise
identical to the corresponding CLI subcommand's output -- the CLI is a
thin adapter over this class.

Examples
--------
>>> from repro.api import ExperimentSpec, Session     # doctest: +SKIP
>>> with Session(workers=4, profile_store=".cache") as session:
...     sweep = session.run(ExperimentSpec(
...         "sweep", workloads=["gcc"], limit=32))    # doctest: +SKIP
...     report = session.run(ExperimentSpec(
...         "validate", workloads=["gcc"], limit=8))  # doctest: +SKIP
"""

from __future__ import annotations

import hashlib
import logging
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro import obs
from repro.api.pool import WorkerPool
from repro.api.results import RunResult
from repro.api.runstore import RunStore
from repro.api.spec import ExperimentSpec, SpecError
from repro.core.interval import ModelCache
from repro.core.model import AnalyticalModel
from repro.core.machine import MachineConfig, nehalem
from repro.explore.engine import SweepEngine
from repro.faults import inject
from repro.faults.policy import RetryPolicy
from repro.profiler.serialization import ProfileStore

__all__ = ["Session", "config_from_overrides", "sweep_payload"]

logger = logging.getLogger(__name__)

#: Kinds whose results the :class:`RunStore` may serve from disk.
#: ``profile`` runs always execute: their product is the profile file /
#: :class:`ProfileStore` entry itself (already content-addressed), not
#: the summary payload.
_CACHEABLE_KINDS = frozenset(
    {"predict", "sweep", "search", "validate", "dvfs"}
)


def config_from_overrides(
    width: Optional[int] = None,
    rob: Optional[int] = None,
    llc_mb: Optional[int] = None,
    frequency: Optional[float] = None,
    prefetch: bool = False,
) -> MachineConfig:
    """The Nehalem-like reference core with spec/CLI-style overrides.

    Mirrors the CLI's ``--width/--rob/--llc-mb/--frequency/--prefetch``
    flags bit-for-bit (same replacement order, hence same derived
    config names).

    Returns
    -------
    MachineConfig
        The overridden configuration.
    """
    from dataclasses import replace

    from repro.caches.cache import CacheConfig

    config = nehalem()
    if width is not None:
        config = replace(config, dispatch_width=width)
    if rob is not None:
        config = replace(config, rob_size=rob)
    if llc_mb is not None:
        config = replace(
            config, llc=CacheConfig(llc_mb << 20, 16, 64, latency=30)
        )
    if frequency is not None:
        config = config.with_frequency(frequency)
    if prefetch:
        config = replace(config, prefetch=True)
    return config


def _point_dict(point) -> Dict[str, float]:
    """JSON-friendly metrics of one :class:`DesignPoint`."""
    return {
        "config": point.config.name,
        "cpi": point.cpi,
        "seconds": point.seconds,
        "power_watts": point.power_watts,
        "energy_joules": point.energy_joules,
        "edp": point.edp,
        "ed2p": point.ed2p,
    }


def sweep_payload(
    names: Sequence[str],
    results: Mapping[str, list],
    frontiers: Mapping[str, Any],
    space_name: str,
    n_configs: int,
    objective: Optional[str],
) -> Dict[str, Any]:
    """Assemble the canonical sweep result payload from streamed points.

    The single assembly routine behind every sweep result: the
    session's :meth:`Session.run` path and the ``repro serve``
    micro-batcher (which merges several sweep specs into one engine
    pass) both build their payloads here, so a batched request's stored
    result is bitwise identical to the same spec run solo.

    Parameters
    ----------
    names:
        Workload names in the spec's profile order (payload order is
        part of the stored bytes).
    results:
        Per-workload :class:`~repro.explore.dse.DesignPoint` lists in
        config order.
    frontiers:
        Per-workload :class:`~repro.explore.pareto.StreamingParetoFront`
        fed the same points.
    space_name:
        The swept :class:`~repro.explore.space.DesignSpace` name.
    n_configs:
        Number of configurations evaluated (after ``limit``).
    objective:
        Optional objective name ranking the best average config.

    Returns
    -------
    dict
        The ``sweep`` kind's result payload.
    """
    from repro.explore.dse import best_average_config
    from repro.explore.search import get_objective

    workloads = [
        {
            "workload": name,
            "points": [_point_dict(p) for p in results[name]],
            "frontier": [
                _point_dict(point) for _, _, point
                in frontiers[name].frontier()
            ],
        }
        for name in names
    ]
    own_results = {name: results[name] for name in names}
    best_average = None
    if n_configs:
        if objective:
            ranked = get_objective(objective)
            best_average = {
                "objective": ranked.name,
                "config": best_average_config(
                    own_results, metric=ranked.metric
                ),
            }
        elif len(names) > 1:
            # Historical default: rank by average CPI.
            best_average = {
                "objective": None,
                "config": best_average_config(own_results),
            }
    return {
        "space": space_name,
        "n_configs": n_configs,
        "workloads": workloads,
        "best_average": best_average,
    }


class Session:
    """Shared-resource owner and executor for declarative experiments.

    Parameters
    ----------
    workers:
        Worker processes shared by every parallel stage (model sweeps
        and simulation sweeps).  ``1`` (the default) runs everything
        serially and never creates a pool; ``None`` uses
        ``os.cpu_count()``.  Results are bitwise identical at any
        worker count.
    profile_store:
        Optional :class:`ProfileStore` (or its directory path): every
        profile the session touches is content-hashed into it and its
        StatStack tables are memoized on disk, so repeated sessions
        start warm.
    run_store:
        Optional :class:`RunStore` (or its directory path): results of
        deterministic experiment kinds are cached by spec fingerprint
        and served from disk on re-run (:attr:`RunResult.cached` is
        then ``True``).
    model:
        Optional base :class:`AnalyticalModel`; a default-configured
        one is built when omitted.  A :class:`ModelCache` is attached
        (if absent) and kept warm for the session's lifetime.
    model_backend:
        Evaluation backend for model sweeps: ``"batch"`` (vectorized),
        ``"scalar"`` (per-config reference loop) or ``None`` for the
        ``REPRO_MODEL_BACKEND`` environment default.  Results are
        bitwise identical across backends, so the choice is not part
        of experiment fingerprints.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` to record
        into.  Defaults to whatever is active (:func:`repro.obs.current`)
        when the session is constructed -- the CLI activates one for
        ``--trace`` / ``--metrics`` and every session built underneath
        inherits it.  The session re-activates its telemetry around
        every :meth:`run`, wraps each run in spans, and attaches a
        ``telemetry`` block to the result.  Telemetry never changes
        results, fingerprints, or run-store bytes.
    retry:
        Optional :class:`~repro.faults.policy.RetryPolicy` for the
        shared :class:`WorkerPool`'s task supervision (per-task
        timeout, bounded retries, backoff).  The default policy
        retries transient failures but never times tasks out; the CLI
        maps ``--task-timeout`` / ``--task-retries`` here.  Because
        every task is a pure function, supervision never changes
        results -- a degraded campaign (pool gave up, engines fell
        back to serial) still streams bitwise-identical points.

    Construction also refreshes the fault-injection plan from the
    ``REPRO_FAULTS`` environment (:func:`repro.faults.inject.refresh`),
    so chaos-mode processes pick their plan up at the same boundary
    that creates the pool the plan will exercise.

    Examples
    --------
    >>> with Session(workers=2) as session:            # doctest: +SKIP
    ...     result = session.run({"kind": "predict",
    ...                           "params": {"workload": "gcc"}})
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        profile_store: Union[ProfileStore, str, None] = None,
        run_store: Union[RunStore, str, None] = None,
        model: Optional[AnalyticalModel] = None,
        model_backend: Optional[str] = None,
        telemetry: "obs.Telemetry | None" = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if isinstance(profile_store, str):
            profile_store = ProfileStore(profile_store)
        if isinstance(run_store, str):
            run_store = RunStore(run_store)
        inject.refresh()
        self.workers = workers
        self.profile_store = profile_store
        self.run_store = run_store
        self.model_backend = model_backend
        self.telemetry = (telemetry if telemetry is not None
                          else obs.current())
        #: Serializes every run on this session.  The shared
        #: :class:`WorkerPool` streams one supervised dispatch at a
        #: time, so "thread-safe" for a session means "one experiment
        #: at a time": ``repro serve`` calls :meth:`run` from a
        #: thread-pool executor and this reentrant lock makes those
        #: calls queue instead of corrupting pool/telemetry state.
        self.lock = threading.RLock()
        #: ``(spec, exception)`` pairs collected by
        #: :meth:`run_many` when ``keep_going`` is set.
        self.failures: List[tuple] = []

        base = model if model is not None else AnalyticalModel()
        if base.cache is None:
            base.cache = ModelCache()
        #: Analytical-model variants by MLP estimator; each keeps its
        #: own :class:`ModelCache` (caches must not be shared across
        #: variants -- their predictions differ).
        self._models: Dict[str, AnalyticalModel] = {
            base.interval.mlp_model: base
        }
        self.model = base
        self.pool = WorkerPool(workers, retry=retry)
        self.engine = SweepEngine(
            model=base,
            workers=workers,
            store=profile_store,
            pool=self.pool,
            backend=model_backend,
        )
        # Lazily-profiled workload registry: traces by
        # (name, instructions, trace_seed); profiles by the full
        # profiling-parameter key; profile files by path.
        self._traces: Dict[tuple, Any] = {}
        self._profiles: Dict[tuple, Any] = {}
        self._file_profiles: Dict[str, Any] = {}

    # -- shared resources ----------------------------------------------

    def _model_for(self, mlp_model: str) -> AnalyticalModel:
        """The session's model variant for one MLP estimator."""
        if mlp_model not in self._models:
            self._models[mlp_model] = AnalyticalModel(
                mlp_model=mlp_model, cache=ModelCache()
            )
        return self._models[mlp_model]

    def trace(self, name: str, instructions: int, trace_seed: int):
        """The (cached) synthetic trace of one suite workload."""
        from repro.workloads import generate_trace, make_workload

        key = (name, instructions, trace_seed)
        if key not in self._traces:
            with obs.span("workloads.trace", workload=name):
                self._traces[key] = generate_trace(
                    make_workload(name, seed=trace_seed),
                    max_instructions=instructions,
                )
        return self._traces[key]

    def profile_workload(
        self,
        name: str,
        instructions: int = 50_000,
        micro_trace: int = 1000,
        window: int = 5000,
        trace_seed: int = 42,
        reuse_sample_rate: float = 1.0,
        reuse_seed: int = 0,
    ):
        """Profile one suite workload through the session registry.

        The trace is generated and profiled at most once per distinct
        parameter set for the session's lifetime; later experiments
        naming the same workload with the same parameters reuse the
        in-memory profile (and its warmed StatStack models).

        Returns
        -------
        ApplicationProfile
            The (possibly cached) profile.
        """
        from repro.profiler import SamplingConfig, profile_application

        key = (name, instructions, micro_trace, window, trace_seed,
               reuse_sample_rate, reuse_seed)
        if key not in self._profiles:
            obs.metrics().inc("workload_registry.misses")
            trace = self.trace(name, instructions, trace_seed)
            sampling = SamplingConfig(
                micro_trace,
                window,
                reuse_sample_rate=reuse_sample_rate,
                reuse_seed=reuse_seed,
            )
            with obs.span("workloads.profile", workload=name):
                self._profiles[key] = profile_application(trace, sampling)
        else:
            obs.metrics().inc("workload_registry.hits")
        return self._profiles[key]

    def load_profile(self, path: str):
        """Load a profile file (cached by path for the session)."""
        from repro.profiler.serialization import load_profile

        if path not in self._file_profiles:
            self._file_profiles[path] = load_profile(path)
        return self._file_profiles[path]

    def _registry_profiles(self, params: Mapping[str, Any],
                           names: Sequence[str]) -> List[Any]:
        """Profiles for suite workload names, via the registry."""
        return [
            self.profile_workload(
                name,
                instructions=params["instructions"],
                micro_trace=params["micro_trace"],
                window=params["window"],
                trace_seed=params["trace_seed"],
                reuse_sample_rate=params["reuse_sample_rate"],
                reuse_seed=params["reuse_seed"],
            )
            for name in names
        ]

    def _gather_profiles(self, params: Mapping[str, Any]) -> List[Any]:
        """Profiles for a sweep/search spec: files first, then names."""
        profiles = [
            self.load_profile(path)
            for path in (params["profiles"] or [])
        ]
        profiles.extend(
            self._registry_profiles(params, params["workloads"] or [])
        )
        return profiles

    def _single_profile(self, params: Mapping[str, Any]):
        """The one profile of a predict/dvfs spec (file or registry)."""
        if params["profile"] is not None:
            return self.load_profile(params["profile"])
        return self._registry_profiles(params, [params["workload"]])[0]

    @staticmethod
    def _space(params: Mapping[str, Any]):
        """The declarative space of a spec (file or Table 6.3 grid)."""
        from repro.explore.space import DesignSpace

        if params["space"]:
            return DesignSpace.load(params["space"])
        return DesignSpace.default()

    # -- execution ------------------------------------------------------

    @staticmethod
    def run_key(spec: ExperimentSpec) -> str:
        """The run-store key of a spec: its fingerprint, made
        content-aware for specs that reference files.

        Specs naming on-disk inputs (``profile``/``profiles`` files, a
        ``space`` JSON) fold a content hash of each referenced file
        into the key, so editing a referenced file invalidates cached
        runs instead of serving results computed from the old bytes.
        Specs that only name suite workloads key on the spec
        fingerprint alone.
        """
        from repro.profiler.serialization import canonical_fingerprint

        params = spec.params
        paths = [params[name] for name in ("profile", "space")
                 if params.get(name)]
        paths.extend(params.get("profiles") or [])
        if not paths:
            return spec.fingerprint
        files: Dict[str, Optional[str]] = {}
        for path in sorted(set(paths)):
            try:
                with open(path, "rb") as handle:
                    digest = hashlib.sha256(handle.read()).hexdigest()
            except OSError:
                # Missing file: execution will raise naturally; the
                # key stays stable so nothing stale is served.
                digest = None
            files[path] = digest
        return canonical_fingerprint(
            {"spec": spec.fingerprint, "files": files}
        )

    def run(
        self, spec: Union[ExperimentSpec, Mapping[str, Any]]
    ) -> RunResult:
        """Execute one experiment (or serve it from the run store).

        Parameters
        ----------
        spec:
            An :class:`ExperimentSpec` or a plain ``{"kind": ...,
            "params": {...}}`` mapping.

        Returns
        -------
        RunResult
            The unified artifact; :attr:`RunResult.cached` is ``True``
            when it came from the :class:`RunStore`.

        Safe to call from multiple threads: runs serialize on
        :attr:`lock` (the shared pool handles one dispatch at a time).
        """
        spec = ExperimentSpec.coerce(spec)
        telemetry = self.telemetry
        with self.lock, obs.activate(telemetry):
            start_events = len(telemetry.tracer.events)
            baseline = (telemetry.metrics.snapshot()
                        if telemetry.metrics.enabled else None)
            with telemetry.span("session.run", kind=spec.kind):
                result = self._execute(spec)
                self._flush_collectors()
            self._attach_telemetry(result, start_events, baseline)
        return result

    def lookup(
        self, spec: Union[ExperimentSpec, Mapping[str, Any]]
    ) -> Optional[RunResult]:
        """The run store's result for ``spec`` without computing.

        ``None`` when no store is attached, the kind is not cacheable,
        or the store misses.  A hit is marked ``cached`` exactly like
        the :meth:`run` warm path -- the service layer answers warm
        requests through here so they never wait behind the batcher.
        """
        spec = ExperimentSpec.coerce(spec)
        if self.run_store is None or spec.kind not in _CACHEABLE_KINDS:
            return None
        key = self.run_key(spec)
        with self.lock, obs.activate(self.telemetry):
            with obs.span("run_store.lookup", kind=spec.kind):
                cached = self.run_store.get(spec, key=key)
        if cached is not None:
            cached.cached = True
        return cached

    def _execute(self, spec: ExperimentSpec) -> RunResult:
        """Serve one coerced spec from the run store or compute it."""
        cacheable = (self.run_store is not None
                     and spec.kind in _CACHEABLE_KINDS)
        if cacheable:
            key = self.run_key(spec)
            with obs.span("run_store.lookup", kind=spec.kind):
                cached = self.run_store.get(spec, key=key)
            if cached is not None:
                cached.cached = True
                return cached
        runner = getattr(self, f"_run_{spec.kind}")
        with obs.span(f"run.{spec.kind}"):
            result = RunResult(spec=spec, data=runner(spec.params))
        if cacheable:
            with obs.span("run_store.put", kind=spec.kind):
                self.run_store.put(result, key=key)
        return result

    def _flush_collectors(self) -> None:
        """Publish pending cache/store counters into the active registry.

        Covers every always-on collector the session owns: each model
        variant's :class:`ModelCache`, the :class:`ProfileStore`, the
        :class:`RunStore` and the :class:`WorkerPool`'s supervision
        counters.  A no-op while metrics are disabled (the plain-int
        counters keep accumulating for a later flush).
        """
        metrics = obs.metrics()
        if not metrics.enabled:
            return
        for model in self._models.values():
            if model.cache is not None:
                model.cache.flush_metrics(metrics)
        if self.profile_store is not None:
            self.profile_store.flush_metrics(metrics)
        if self.run_store is not None:
            self.run_store.flush_metrics(metrics)
        self.pool.flush_metrics(metrics)

    def _attach_telemetry(
        self,
        result: RunResult,
        start_events: int,
        baseline: Optional[Dict[str, Any]],
    ) -> None:
        """Attach this run's telemetry block to its result.

        The block covers *this* run only: spans recorded since
        ``start_events`` and the metrics delta against ``baseline``
        (the registry snapshot taken as the run began).  Nothing is
        attached while telemetry is disabled.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        block: Dict[str, Any] = {}
        if telemetry.tracer.enabled:
            events = list(telemetry.tracer.events)[start_events:]
            block["spans"] = obs.span_stats(events)
        if telemetry.metrics.enabled:
            block["metrics"] = telemetry.metrics.diff(baseline)
        result.telemetry = block

    def run_many(
        self,
        specs: Sequence[Union[ExperimentSpec, Mapping[str, Any]]],
        keep_going: bool = False,
    ) -> List[Optional[RunResult]]:
        """Execute a campaign of specs on this session's warm resources.

        Runs sequentially in order (stages often feed each other's
        caches); with a :class:`RunStore` attached, already-computed
        specs are skipped and served from disk.  That store is also the
        campaign checkpoint: a campaign that died mid-way re-runs with
        the same specs and resumes where it stopped, because every
        completed cacheable run was persisted (atomically) as it
        finished.

        Parameters
        ----------
        specs:
            The experiment specs, run in order.
        keep_going:
            With the default ``False``, the first failing spec raises
            and aborts the campaign (completed runs stay in the run
            store).  With ``True``, a failing spec is recorded in
            :attr:`failures` as ``(spec, exception)``, counted as
            ``session.spec_failures``, its slot in the returned list is
            ``None``, and the campaign continues.

        Returns
        -------
        list of RunResult or None
            One entry per spec, in order (``None`` only for specs that
            failed under ``keep_going``).
        """
        results: List[Optional[RunResult]] = []
        for spec in specs:
            if not keep_going:
                results.append(self.run(spec))
                continue
            try:
                results.append(self.run(spec))
            except Exception as exc:  # noqa: BLE001 -- campaign boundary
                self.failures.append((spec, exc))
                with obs.activate(self.telemetry):
                    obs.metrics().inc("session.spec_failures")
                logger.warning(
                    "spec failed (%s: %s); continuing campaign",
                    type(exc).__name__, exc,
                )
                results.append(None)
        return results

    # -- per-kind executors ---------------------------------------------

    def _run_profile(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Profile workloads into files / the store / the registry."""
        from repro.profiler.serialization import save_profile

        store = self.profile_store
        if params["store"]:
            store = ProfileStore(params["store"])
        entries = []
        for name in params["workloads"]:
            # The span is both the telemetry record and the payload's
            # "seconds" field -- one measurement, no way to disagree.
            with obs.span("profile.workload", workload=name) as span:
                profile = self.profile_workload(
                    name,
                    instructions=params["instructions"],
                    micro_trace=params["micro_trace"],
                    window=params["window"],
                    trace_seed=params["seed"],
                    reuse_sample_rate=params["reuse_sample_rate"],
                    reuse_seed=params["reuse_seed"],
                )
                key = store.warm(profile) if store is not None else None
                if params["output"]:
                    save_profile(profile, params["output"])
            entries.append({
                "workload": name,
                "instructions": profile.num_instructions,
                "micro_traces": len(profile.micro_traces),
                "fingerprint": key,
                "output": params["output"],
                "seconds": round(span.seconds, 6),
            })
        if store is not None:
            store.flush_metrics(obs.metrics())
        return {
            "store": params["store"],
            "sampling": {
                "micro_trace_length": params["micro_trace"],
                "window_length": params["window"],
                "reuse_sample_rate": params["reuse_sample_rate"],
                "reuse_seed": params["reuse_seed"],
            },
            "trace_seed": params["seed"],
            "profiles": entries,
        }

    def _run_predict(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Evaluate the analytical model for one (profile, config)."""
        profile = self._single_profile(params)
        config = config_from_overrides(
            width=params["width"],
            rob=params["rob"],
            llc_mb=params["llc_mb"],
            frequency=params["frequency"],
            prefetch=params["prefetch"],
        )
        model = self._model_for(params["mlp_model"])
        result = model.predict(profile, config)
        return {
            "workload": profile.name,
            "config": config.name,
            "cpi": result.cpi,
            "seconds": result.seconds,
            "power_watts": result.power_watts,
            "power_static_watts": result.power.static_total,
            "energy_joules": result.energy_joules,
            "edp": result.edp,
            "ed2p": result.ed2p,
            "cpi_stack": result.cpi_stack(),
        }

    def _run_sweep(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Sweep a design space; per-workload points + Pareto fronts."""
        from repro.explore.pareto import StreamingParetoFront

        profiles = self._gather_profiles(params)
        names = [p.name for p in profiles]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise SpecError(
                "duplicate profile name(s): " + ", ".join(duplicates)
                + " (results are keyed by workload name; profiles "
                "would silently merge)"
            )
        space = self._space(params)
        configs = space.configs()
        if params["limit"] is not None:
            configs = configs[:params["limit"]]

        frontiers = {p.name: StreamingParetoFront() for p in profiles}
        results = {p.name: [] for p in profiles}
        for point in self.engine.iter_sweep(profiles, configs):
            results[point.workload].append(point)
            frontiers[point.workload].add_point(point)
        return sweep_payload(names, results, frontiers, space.name,
                             len(configs), params["objective"])

    def _run_search(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Guided search over a space under an evaluation budget."""
        from repro.explore.search import (
            SearchProblem,
            get_objective,
            make_optimizer,
        )

        kwargs = {}
        if params["population"] is not None:
            kwargs["population"] = params["population"]
        if params["batch_size"] is not None:
            kwargs["batch_size"] = params["batch_size"]
        optimizer = make_optimizer(
            params["optimizer"], seed=params["seed"], **kwargs
        )
        profiles = self._gather_profiles(params)
        space = self._space(params)
        objective = get_objective(
            params["objective"], power_cap_watts=params["power_cap"]
        )
        problem = SearchProblem(
            profiles, space, objective, engine=self.engine
        )
        trajectory = optimizer.search(problem, params["budget"])
        # The canonical best (SearchTrajectory.best owns the tie-break
        # rule) is exported once here; renderers must not re-derive it.
        best = trajectory.best
        return {
            "space": space.name,
            "space_size": space.size(),
            "workloads": [p.name for p in profiles],
            "optimizer": optimizer.name,
            "seed": params["seed"],
            "objective": objective.name,
            "budget": params["budget"],
            "best": {
                "index": best.index,
                "point": dict(best.point),
                "fitness": best.fitness,
                "config": space.config(best.point).name,
            },
            "trajectory": trajectory.as_dict(),
        }

    def _run_validate(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Model-vs-simulator validation campaign (thesis S7.4/S7.5)."""
        from repro.explore.validate import (
            ValidationCampaign,
            ValidationCase,
        )

        space = self._space(params)
        configs = space.configs()
        if params["limit"] is not None:
            configs = configs[:params["limit"]]
        if not configs:
            raise SpecError("empty configuration grid")
        cases = []
        for name in params["workloads"]:
            profile = self.profile_workload(
                name,
                instructions=params["instructions"],
                micro_trace=params["micro_trace"],
                window=params["window"],
                trace_seed=params["trace_seed"],
            )
            trace = self.trace(
                name, params["instructions"], params["trace_seed"]
            )
            cases.append(ValidationCase(profile=profile, trace=trace))
        workers = (self.workers if self.workers is not None
                   else self.pool.effective_workers())
        campaign = ValidationCampaign(
            cases,
            configs,
            engine=self.engine,
            model_workers=workers,
            sim_workers=workers,
            pool=self.pool,
            train_fraction=params["train_fraction"],
            seed=params["seed"],
            space_name=space.name,
        )
        return campaign.run().as_dict()

    def _run_dvfs(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """DVFS operating-point exploration and the ED2P optimum."""
        from repro.core.machine import DVFSPoint, dvfs_vdd
        from repro.explore.dvfs import (
            best_under_power_cap,
            config_at,
            explore_dvfs,
            optimal_ed2p,
        )

        profile = self._single_profile(params)
        base = config_from_overrides(
            width=params["width"],
            rob=params["rob"],
            llc_mb=params["llc_mb"],
            frequency=params["frequency"],
            prefetch=params["prefetch"],
        )
        points = None
        if params["frequencies"] is not None:
            points = [DVFSPoint(f, dvfs_vdd(f))
                      for f in params["frequencies"]]
        results = explore_dvfs(
            profile, base, points=points, engine=self.engine
        )
        best = optimal_ed2p(results)
        optimum_index = next(
            i for i, r in enumerate(results) if r is best
        )
        power_cap = None
        if params["power_cap"] is not None:
            candidates = [(config_at(base, r.point), r.result)
                          for r in results]
            capped = best_under_power_cap(
                candidates, params["power_cap"]
            )
            power_cap = {"watts": params["power_cap"]}
            if capped is None:
                power_cap["config"] = None
            else:
                config, result = capped
                power_cap.update({
                    "config": config.name,
                    "seconds": result.seconds,
                    "power_watts": result.power_watts,
                })
        return {
            "workload": profile.name,
            "base_config": base.name,
            "points": [
                {
                    "frequency_ghz": r.point.frequency_ghz,
                    "vdd": r.point.vdd,
                    "seconds": r.seconds,
                    "power_watts": r.power_watts,
                    "energy_joules": r.energy_joules,
                    "ed2p": r.ed2p,
                }
                for r in results
            ],
            "optimum_index": optimum_index,
            "power_cap": power_cap,
        }

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool (idempotent; caches stay warm)."""
        self.pool.close()

    def __enter__(self) -> "Session":
        """Context-manager entry: the session itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the worker pool."""
        self.close()
