"""A persistent, supervised worker pool for multi-stage experiment runs.

The sweep engines historically created one ``multiprocessing.Pool`` per
call: fine for a single sweep, wasteful for a pipeline that profiles,
sweeps, searches and validates on the same machine in one process
(every stage pays pool start-up, and warm per-worker state dies with
the pool).  :class:`WorkerPool` factors the pool out into an object a
:class:`~repro.api.session.Session` can own for its whole lifetime and
hand to every stage.

Because a long-lived pool cannot use per-sweep ``initializer`` /
``initargs`` (those are fixed at pool creation), the pool broadcasts
each stage's shared state out of band instead: the state is pickled
once in the parent, small states ride along with every task while
large ones (traces, many profiles) are spilled to one temp file that
each worker reads once, and either way the unpickled state is cached
worker-side under a monotonically increasing token -- each worker
materializes a given stage's state at most once.  Results are bitwise
identical to the per-call-pool path; only where the processes come
from (and how state reaches them) changes.

On top of the broadcast protocol sits **task supervision** (the
default): each task is submitted individually and awaited with a
per-task timeout, failed attempts are retried under a
:class:`~repro.faults.policy.RetryPolicy` (bounded attempts,
exponential backoff, deterministic jitter), and a wedged or crashed
worker triggers an automatic pool restart with every in-flight task
resubmitted.  Tasks are pure functions of ``(state, task)``, so a
retry re-computes the same value and the result stream stays bitwise
identical to a fault-free run -- supervision changes *when* work
happens, never *what* comes back.  When a stage exhausts its restart
budget the pool marks itself unavailable and raises
:class:`WorkerPoolError` mid-stream; the engines catch it and finish
the remaining batches serially (see ``docs/robustness.md``).

When telemetry is active in the parent, worker-side metrics piggyback
on the existing result messages: each task runs under a worker-local
registry and :func:`_dispatch` returns ``(result, delta)``, where
``delta`` is the metrics snapshot that task produced.  The parent
merges deltas in submission order as results stream back, so the
aggregate is deterministic for a given task list regardless of which
worker ran what.  No extra IPC channel -- just a slightly fatter
result tuple, and only when metrics are enabled.
"""

from __future__ import annotations

import itertools
import os
import pickle
import shutil
import tempfile
import time
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple

from repro import obs
from repro.faults import inject
from repro.faults.policy import RetryPolicy

__all__ = ["WorkerPool", "WorkerPoolError"]


class WorkerPoolError(RuntimeError):
    """The pool cannot run tasks (unavailable or out of restarts).

    Raised by :meth:`WorkerPool.imap` when worker processes cannot be
    created on this platform (missing semaphores, sandboxed
    environments, ...), and from *inside* a supervised result stream
    when a stage exhausts its pool-restart budget.  Callers are
    expected to fall back to their serial path, exactly as the engines
    do -- completed results keep streaming, only the remainder moves
    in-process.
    """


#: Task failures the supervisor retries in place (without restarting
#: the pool): injected transient errors and the OS-level errors a
#: loaded machine produces (pipe resets, interrupted IO).
_TRANSIENT_TASK_ERRORS = (
    inject.InjectedTaskError,
    EOFError,
    OSError,
)


# ----------------------------------------------------------------------
# Worker-process plumbing (module level so it pickles under spawn too)
# ----------------------------------------------------------------------

#: Per-worker cache of the most recent shared state: the token names
#: one ``imap`` call's state, so re-unpickling is skipped for every
#: task after a worker's first task of a stage.
_SHARED_STATE = {"token": None, "value": None}


def _dispatch(task: Tuple[int, Any, Callable, Any, bool,
                          Optional[str]]) -> Any:
    """Run one wrapped task inside a worker.

    ``task`` is ``(token, payload, func, args, collect, fault_key)``:
    ``payload`` is the pickled shared state of the stage identified by
    ``token`` -- either the raw bytes (small states) or the path of a
    spill file (large states, read once per worker) -- and
    ``func(state, args)`` performs the actual work.

    ``fault_key`` is non-``None`` only on the supervised path: it
    names this (stage, task, attempt) for the fault-injection harness,
    which may raise or sleep here before the task body runs (see
    :func:`repro.faults.inject.task_site`).  The environment-driven
    fault plan is refreshed first, so workers honor ``REPRO_FAULTS``
    under both fork and spawn start methods.

    With ``collect`` false the bare result is returned.  With
    ``collect`` true the task runs under a worker-local metrics
    registry (no tracing -- span timestamps from another process have
    no shared origin) and the return value is ``(result, delta)``,
    where ``delta`` is that registry's snapshot: the task's metric
    contribution, merged into the parent registry by :meth:`
    WorkerPool.imap` as results stream back.
    """
    token, payload, func, args, collect, fault_key = task
    if fault_key is not None:
        inject.refresh()
    if _SHARED_STATE["token"] != token:
        blob = payload
        if isinstance(payload, str):
            with open(payload, "rb") as handle:
                blob = handle.read()
        _SHARED_STATE["value"] = pickle.loads(blob)
        _SHARED_STATE["token"] = token
    if not collect:
        if fault_key is not None:
            inject.task_site(fault_key)
        return func(_SHARED_STATE["value"], args)
    telemetry = obs.Telemetry(trace=False, metrics=True)
    with obs.activate(telemetry):
        if fault_key is not None:
            inject.task_site(fault_key)
        with obs.span("pool.task") as span:
            result = func(_SHARED_STATE["value"], args)
        telemetry.metrics.inc("pool.tasks")
        telemetry.metrics.observe("pool.task_seconds", span.seconds)
    return result, telemetry.metrics.snapshot()


class WorkerPool:
    """A lazily-created ``multiprocessing.Pool`` reused across stages.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``None`` uses ``os.cpu_count()``;
        values ``<= 1`` mean the pool is never created (callers should
        consult :attr:`parallel` and stay serial).
    retry:
        The :class:`~repro.faults.policy.RetryPolicy` governing the
        supervised path (attempts, per-task timeout, backoff).  A
        default policy is built when omitted.
    max_restarts:
        Pool restarts tolerated *per stage* before the stage gives up
        with :class:`WorkerPoolError` and the pool marks itself
        unavailable (see :meth:`revive`).
    supervised:
        ``False`` selects the raw, unsupervised dispatch path (plain
        ``Pool.imap``, no timeouts, no retries, no fault injection).
        The raw path is the benchmark baseline the supervision
        overhead gate measures against, and the differential reference
        for bitwise-identity tests.

    Attributes
    ----------
    pools_created:
        How many OS-level pools this object has created -- test
        instrumentation for the "one pool per session" guarantee; a
        multi-stage pipeline sharing one :class:`WorkerPool` reads 1
        here no matter how many sweeps it ran (0 when every stage ran
        serially or process creation is unavailable).  Supervision
        restarts after crashes/timeouts also increment it.
    retries / timeouts / restarts / worker_crashes / give_ups:
        Lifetime supervision accounting as plain ints (always on);
        :meth:`flush_metrics` publishes the deltas under ``pool.*``
        metric names.

    Examples
    --------
    >>> pool = WorkerPool(workers=4)                   # doctest: +SKIP
    >>> for out in pool.imap(func, state, tasks):      # doctest: +SKIP
    ...     consume(out)
    >>> pool.close()                                   # doctest: +SKIP
    """

    #: Stage states whose pickle exceeds this many bytes are spilled
    #: to one temp file and broadcast by path (one disk read per
    #: worker) instead of being attached to every task.
    inline_state_limit = 65536

    def __init__(
        self,
        workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        max_restarts: int = 5,
        supervised: bool = True,
    ) -> None:
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_restarts = max_restarts
        self.supervised = supervised
        self.pools_created = 0
        self.retries = 0
        self.timeouts = 0
        self.restarts = 0
        self.worker_crashes = 0
        self.give_ups = 0
        self._flushed = {"retries": 0, "timeouts": 0, "restarts": 0,
                         "worker_crashes": 0, "give_ups": 0}
        self._pool = None
        self._tokens = itertools.count(1)
        self._unavailable = False
        self._spill_dir: Optional[str] = None
        self._spills: dict = {}

    def effective_workers(self) -> int:
        """The worker count after resolving the ``None`` default."""
        if self.workers is None:
            return os.cpu_count() or 1
        return max(1, self.workers)

    @property
    def parallel(self) -> bool:
        """Whether this pool would run tasks on worker processes."""
        return self.effective_workers() > 1 and not self._unavailable

    # ------------------------------------------------------------------

    def _ensure(self):
        """The live pool, created on first use (:class:`WorkerPoolError`
        when worker processes cannot be created on this platform)."""
        if self._unavailable:
            raise WorkerPoolError("worker processes unavailable")
        if self._pool is None:
            try:
                import multiprocessing

                self._pool = multiprocessing.Pool(
                    processes=self.effective_workers()
                )
            except (ImportError, OSError, ValueError) as exc:
                self._unavailable = True
                raise WorkerPoolError(str(exc)) from exc
            self.pools_created += 1
        return self._pool

    def _spill(self, token: int, payload: bytes) -> str:
        """Write one stage's state to a spill file; return its path.

        Stages run in token order and overlap at most pairwise (e.g. a
        streaming consumer of one sweep starting the next), so spill
        files older than the previous stage are dead and deleted here;
        each stage's stream additionally removes its own spill when it
        ends or is abandoned, and :meth:`close` removes the whole
        spill directory.
        """
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-pool-")
        path = os.path.join(self._spill_dir, f"state-{token}.pkl")
        with open(path, "wb") as handle:
            handle.write(payload)
        for old in [t for t in self._spills if t < token - 1]:
            try:
                os.remove(self._spills.pop(old))
            except OSError:
                pass
        self._spills[token] = path
        return path

    def _drop_spill(self, token: int) -> None:
        """Remove one stage's spill file (no-op when it never spilled)."""
        path = self._spills.pop(token, None)
        if path is not None:
            try:
                os.remove(path)
            except OSError:
                pass

    def imap(
        self,
        func: Callable[[Any, Any], Any],
        state: Any,
        tasks: Sequence[Any],
    ) -> Iterator[Any]:
        """Stream ``func(state, task)`` results in task order.

        ``state`` is pickled once here and installed lazily in each
        worker (cached under this call's token).  Pickles larger than
        :attr:`inline_state_limit` are spilled to a temp file and
        shipped by path -- one disk read per worker instead of the
        whole state riding the pipe with every task; the spill file is
        removed when the returned stream ends, raises, or is abandoned
        (generator finalization).  ``func`` must be a module-level
        (picklable) callable.

        On the supervised path (the default) each task attempt is
        bounded by the pool's :class:`~repro.faults.policy.RetryPolicy`:
        timeouts and injected worker crashes restart the pool and
        resubmit the in-flight window, transient task errors back off
        and retry in place, and attempts are bounded -- all counted in
        the supervision counters.  Results still arrive in task order
        and are bitwise identical to a fault-free run.

        When the active telemetry records metrics, each worker result
        arrives with that task's metric delta piggybacked (see
        :func:`_dispatch`); the deltas are merged into the parent
        registry here, in submission order, before the bare result is
        yielded -- callers never see the wrapping.

        Raises
        ------
        WorkerPoolError
            When the pool cannot be created (raised here, eagerly), or
            out of the stream when a stage exhausts its restart budget;
            callers fall back to their serial path either way.
        """
        pool = self._ensure()
        token = next(self._tokens)
        registry = obs.metrics()
        collect = registry.enabled
        payload: Any = pickle.dumps(
            state, protocol=pickle.HIGHEST_PROTOCOL
        )
        registry.inc("pool.stages")
        registry.inc("pool.tasks_submitted", len(tasks))
        registry.inc("pool.state_bytes", len(payload))
        registry.set_gauge("pool.workers", self.effective_workers())
        if len(payload) > self.inline_state_limit:
            payload = self._spill(token, payload)
            registry.inc("pool.spills")
        tasks = list(tasks)
        if not self.supervised:
            wrapped = [(token, payload, func, task, collect, None)
                       for task in tasks]
            return self._stream_plain(
                pool.imap(_dispatch, wrapped), token, collect, registry
            )
        return self._stream_supervised(
            func, payload, token, tasks, collect, registry
        )

    def _stream_plain(self, results: Iterator[Any], token: int,
                      collect: bool, registry) -> Iterator[Any]:
        """Unsupervised result stream: unwrap deltas, reclaim the spill.

        The ``finally`` runs on normal exhaustion, on a raising task,
        and on generator finalization when the consumer abandons the
        stream -- the spill file never outlives its stage.
        """
        try:
            for item in results:
                if collect:
                    result, delta = item
                    registry.merge(delta)
                    yield result
                else:
                    yield item
        finally:
            self._drop_spill(token)

    def _stream_supervised(self, func: Callable, payload: Any,
                           token: int, tasks: list, collect: bool,
                           registry) -> Iterator[Any]:
        """Supervised result stream: timeouts, retries, pool restarts.

        Tasks are submitted individually (``apply_async``) over a
        bounded in-flight window and consumed strictly in task order.
        Per task attempt:

        * ``multiprocessing.TimeoutError`` after ``retry.timeout``
          seconds -- the worker is presumed wedged (or genuinely dead:
          a task lost to a killed worker never completes), so the pool
          is restarted and every in-flight task resubmitted.
        * :class:`~repro.faults.inject.InjectedWorkerCrash` -- treated
          exactly like a real worker death: restart + resubmit, after
          the policy's backoff delay.
        * transient errors (:data:`_TRANSIENT_TASK_ERRORS`) -- retried
          in place after backoff, without restarting the pool.

        Attempts are bounded by ``retry.max_attempts`` and restarts by
        ``max_restarts`` per stage; exhausting either gives the stage
        up with :class:`WorkerPoolError` (transient errors re-raise
        their original exception instead -- a task that fails the same
        way repeatedly is broken, not unlucky, and would fail serially
        too).
        """
        from multiprocessing import TimeoutError as MPTimeoutError

        policy = self.retry
        n = len(tasks)
        try:
            pending: dict = {}
            attempts = [0] * n

            def submit(index: int) -> None:
                key = f"{token}:{index}:{attempts[index]}"
                wrapped = (token, payload, func, tasks[index], collect,
                           key)
                pending[index] = self._pool.apply_async(
                    _dispatch, (wrapped,)
                )

            def resubmit_pending() -> None:
                for index in sorted(pending):
                    submit(index)

            window = max(2 * self.effective_workers(), 2)
            next_submit = min(window, n)
            for index in range(next_submit):
                submit(index)

            stage_restarts = 0
            for index in range(n):
                while True:
                    handle = pending[index]
                    try:
                        value = handle.get(policy.timeout)
                    except MPTimeoutError:
                        self.timeouts += 1
                        attempts[index] += 1
                        if attempts[index] >= policy.max_attempts:
                            self._fail_stage(
                                f"task {index} timed out "
                                f"{attempts[index]} time(s)"
                            )
                        self.retries += 1
                        stage_restarts = self._recycle(stage_restarts)
                        resubmit_pending()
                        continue
                    except inject.InjectedWorkerCrash:
                        self.worker_crashes += 1
                        attempts[index] += 1
                        if attempts[index] >= policy.max_attempts:
                            self._fail_stage(
                                f"task {index} crashed its worker "
                                f"{attempts[index]} time(s)"
                            )
                        self.retries += 1
                        stage_restarts = self._recycle(stage_restarts)
                        time.sleep(policy.delay(
                            f"{token}:{index}", attempts[index] - 1
                        ))
                        resubmit_pending()
                        continue
                    except _TRANSIENT_TASK_ERRORS:
                        attempts[index] += 1
                        if attempts[index] >= policy.max_attempts:
                            raise
                        self.retries += 1
                        time.sleep(policy.delay(
                            f"{token}:{index}", attempts[index] - 1
                        ))
                        submit(index)
                        continue
                    break
                del pending[index]
                if next_submit < n:
                    submit(next_submit)
                    next_submit += 1
                if collect:
                    result, delta = value
                    registry.merge(delta)
                    yield result
                else:
                    yield value
        finally:
            self._drop_spill(token)

    def _recycle(self, stage_restarts: int) -> int:
        """Restart the pool after a crash/timeout; bound per stage.

        Terminates the (possibly wedged) worker processes and creates
        a fresh pool.  When the stage has already used its
        ``max_restarts`` budget, gives the stage up instead (see
        :meth:`_fail_stage`).
        """
        stage_restarts += 1
        if stage_restarts > self.max_restarts:
            self._fail_stage(
                f"stage exceeded {self.max_restarts} pool restart(s)"
            )
        self.restarts += 1
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._ensure()
        return stage_restarts

    def _fail_stage(self, reason: str) -> None:
        """Give up: mark the pool unavailable and raise mid-stream.

        Later stages then fail eagerly in :meth:`_ensure` and the
        engines run serially for the rest of the campaign (until
        :meth:`revive`).  Completed results already yielded by the
        stream are unaffected -- nothing is lost, the remainder just
        moves in-process.
        """
        self.give_ups += 1
        self._unavailable = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        raise WorkerPoolError(reason)

    def revive(self) -> None:
        """Clear the unavailable flag set by an exhausted stage.

        The next :meth:`imap` then tries to create a fresh pool again
        -- the opt-back-in after a campaign degraded to serial.
        """
        self._unavailable = False

    def flush_metrics(self, metrics) -> None:
        """Publish supervision counters accumulated since the last flush.

        Increments ``pool.retries`` / ``pool.timeouts`` /
        ``pool.restarts`` / ``pool.worker_crashes`` / ``pool.give_ups``
        on ``metrics`` by the deltas since the previous flush (repeated
        flushing never double-counts).  Flushing into a disabled
        registry is a no-op that keeps the deltas pending.
        """
        if not metrics.enabled:
            return
        for attr in ("retries", "timeouts", "restarts",
                     "worker_crashes", "give_ups"):
            value = getattr(self, attr)
            delta = value - self._flushed[attr]
            if delta:
                metrics.inc(f"pool.{attr}", delta)
                self._flushed[attr] = value

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Terminate the worker processes (idempotent).

        The pool object stays usable: the next :meth:`imap` creates a
        fresh OS pool (and increments :attr:`pools_created`).
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
            self._spills = {}

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the pool."""
        self.close()
