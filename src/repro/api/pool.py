"""A persistent, shareable worker pool for multi-stage experiment runs.

The sweep engines historically created one ``multiprocessing.Pool`` per
call: fine for a single sweep, wasteful for a pipeline that profiles,
sweeps, searches and validates on the same machine in one process
(every stage pays pool start-up, and warm per-worker state dies with
the pool).  :class:`WorkerPool` factors the pool out into an object a
:class:`~repro.api.session.Session` can own for its whole lifetime and
hand to every stage.

Because a long-lived pool cannot use per-sweep ``initializer`` /
``initargs`` (those are fixed at pool creation), the pool broadcasts
each stage's shared state out of band instead: the state is pickled
once in the parent, small states ride along with every task while
large ones (traces, many profiles) are spilled to one temp file that
each worker reads once, and either way the unpickled state is cached
worker-side under a monotonically increasing token -- each worker
materializes a given stage's state at most once.  Results are bitwise
identical to the per-call-pool path; only where the processes come
from (and how state reaches them) changes.

When telemetry is active in the parent, worker-side metrics piggyback
on the existing result messages: each task runs under a worker-local
registry and :func:`_dispatch` returns ``(result, delta)``, where
``delta`` is the metrics snapshot that task produced.  The parent
merges deltas in submission order as results stream back, so the
aggregate is deterministic for a given task list regardless of which
worker ran what.  No extra IPC channel -- just a slightly fatter
result tuple, and only when metrics are enabled.
"""

from __future__ import annotations

import itertools
import os
import pickle
import shutil
import tempfile
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple

from repro import obs

__all__ = ["WorkerPool", "WorkerPoolError"]


class WorkerPoolError(RuntimeError):
    """The pool cannot run tasks (no usable ``multiprocessing``).

    Raised by :meth:`WorkerPool.imap` when worker processes cannot be
    created on this platform (missing semaphores, sandboxed
    environments, ...).  Callers are expected to fall back to their
    serial path, exactly as the engines do for per-call pools.
    """


# ----------------------------------------------------------------------
# Worker-process plumbing (module level so it pickles under spawn too)
# ----------------------------------------------------------------------

#: Per-worker cache of the most recent shared state: the token names
#: one ``imap`` call's state, so re-unpickling is skipped for every
#: task after a worker's first task of a stage.
_SHARED_STATE = {"token": None, "value": None}


def _dispatch(task: Tuple[int, Any, Callable, Any, bool]) -> Any:
    """Run one wrapped task inside a worker.

    ``task`` is ``(token, payload, func, args, collect)``: ``payload``
    is the pickled shared state of the stage identified by ``token`` --
    either the raw bytes (small states) or the path of a spill file
    (large states, read once per worker) -- and ``func(state, args)``
    performs the actual work.

    With ``collect`` false the bare result is returned.  With
    ``collect`` true the task runs under a worker-local metrics
    registry (no tracing -- span timestamps from another process have
    no shared origin) and the return value is ``(result, delta)``,
    where ``delta`` is that registry's snapshot: the task's metric
    contribution, merged into the parent registry by :meth:`
    WorkerPool.imap` as results stream back.
    """
    token, payload, func, args, collect = task
    if _SHARED_STATE["token"] != token:
        blob = payload
        if isinstance(payload, str):
            with open(payload, "rb") as handle:
                blob = handle.read()
        _SHARED_STATE["value"] = pickle.loads(blob)
        _SHARED_STATE["token"] = token
    if not collect:
        return func(_SHARED_STATE["value"], args)
    telemetry = obs.Telemetry(trace=False, metrics=True)
    with obs.activate(telemetry):
        with obs.span("pool.task") as span:
            result = func(_SHARED_STATE["value"], args)
        telemetry.metrics.inc("pool.tasks")
        telemetry.metrics.observe("pool.task_seconds", span.seconds)
    return result, telemetry.metrics.snapshot()


class WorkerPool:
    """A lazily-created ``multiprocessing.Pool`` reused across stages.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``None`` uses ``os.cpu_count()``;
        values ``<= 1`` mean the pool is never created (callers should
        consult :attr:`parallel` and stay serial).

    Attributes
    ----------
    pools_created:
        How many OS-level pools this object has created -- test
        instrumentation for the "one pool per session" guarantee; a
        multi-stage pipeline sharing one :class:`WorkerPool` reads 1
        here no matter how many sweeps it ran (0 when every stage ran
        serially or process creation is unavailable).

    Examples
    --------
    >>> pool = WorkerPool(workers=4)                   # doctest: +SKIP
    >>> for out in pool.imap(func, state, tasks):      # doctest: +SKIP
    ...     consume(out)
    >>> pool.close()                                   # doctest: +SKIP
    """

    #: Stage states whose pickle exceeds this many bytes are spilled
    #: to one temp file and broadcast by path (one disk read per
    #: worker) instead of being attached to every task.
    inline_state_limit = 65536

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers
        self.pools_created = 0
        self._pool = None
        self._tokens = itertools.count(1)
        self._unavailable = False
        self._spill_dir: Optional[str] = None
        self._spills: dict = {}

    def effective_workers(self) -> int:
        """The worker count after resolving the ``None`` default."""
        if self.workers is None:
            return os.cpu_count() or 1
        return max(1, self.workers)

    @property
    def parallel(self) -> bool:
        """Whether this pool would run tasks on worker processes."""
        return self.effective_workers() > 1 and not self._unavailable

    # ------------------------------------------------------------------

    def _ensure(self):
        """The live pool, created on first use (:class:`WorkerPoolError`
        when worker processes cannot be created on this platform)."""
        if self._unavailable:
            raise WorkerPoolError("worker processes unavailable")
        if self._pool is None:
            try:
                import multiprocessing

                self._pool = multiprocessing.Pool(
                    processes=self.effective_workers()
                )
            except (ImportError, OSError, ValueError) as exc:
                self._unavailable = True
                raise WorkerPoolError(str(exc)) from exc
            self.pools_created += 1
        return self._pool

    def _spill(self, token: int, payload: bytes) -> str:
        """Write one stage's state to a spill file; return its path.

        Stages run in token order and overlap at most pairwise (e.g. a
        streaming consumer of one sweep starting the next), so spill
        files older than the previous stage are dead and deleted here;
        :meth:`close` removes the whole spill directory.
        """
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-pool-")
        path = os.path.join(self._spill_dir, f"state-{token}.pkl")
        with open(path, "wb") as handle:
            handle.write(payload)
        for old in [t for t in self._spills if t < token - 1]:
            try:
                os.remove(self._spills.pop(old))
            except OSError:
                pass
        self._spills[token] = path
        return path

    def imap(
        self,
        func: Callable[[Any, Any], Any],
        state: Any,
        tasks: Sequence[Any],
    ) -> Iterator[Any]:
        """Stream ``func(state, task)`` results in task order.

        ``state`` is pickled once here and installed lazily in each
        worker (cached under this call's token).  Pickles larger than
        :attr:`inline_state_limit` are spilled to a temp file and
        shipped by path -- one disk read per worker instead of the
        whole state riding the pipe with every task.  ``func`` must be
        a module-level (picklable) callable.

        When the active telemetry records metrics, each worker result
        arrives with that task's metric delta piggybacked (see
        :func:`_dispatch`); the deltas are merged into the parent
        registry here, in submission order, before the bare result is
        yielded -- callers never see the wrapping.

        Raises
        ------
        WorkerPoolError
            When the pool cannot be created; callers fall back to
            their serial path.
        """
        pool = self._ensure()
        token = next(self._tokens)
        registry = obs.metrics()
        collect = registry.enabled
        payload: Any = pickle.dumps(
            state, protocol=pickle.HIGHEST_PROTOCOL
        )
        registry.inc("pool.stages")
        registry.inc("pool.tasks_submitted", len(tasks))
        registry.inc("pool.state_bytes", len(payload))
        registry.set_gauge("pool.workers", self.effective_workers())
        if len(payload) > self.inline_state_limit:
            payload = self._spill(token, payload)
            registry.inc("pool.spills")
        wrapped = [(token, payload, func, task, collect) for task in tasks]
        results = pool.imap(_dispatch, wrapped)
        if not collect:
            return results
        return self._merge_stream(results, registry)

    @staticmethod
    def _merge_stream(results: Iterator[Any], registry) -> Iterator[Any]:
        """Unwrap ``(result, delta)`` pairs, merging deltas in order."""
        for result, delta in results:
            registry.merge(delta)
            yield result

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Terminate the worker processes (idempotent).

        The pool object stays usable: the next :meth:`imap` creates a
        fresh OS pool (and increments :attr:`pools_created`).
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
            self._spills = {}

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the pool."""
        self.close()
