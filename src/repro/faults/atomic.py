"""Crash-safe file writes: temp file in the same directory + rename.

A store entry that is half-written when the process dies is worse than
a missing one: it sits on disk failing every later read.  The
:func:`atomic_write` context manager removes that window -- content is
written to a ``mkstemp`` sibling in the destination directory and
``os.replace``-d over the target only after the writer body finished,
so readers observe either the old bytes or the new bytes, never a
prefix.  On any error the temp file is removed and the destination is
untouched.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import IO, Iterator

__all__ = ["atomic_write"]


@contextmanager
def atomic_write(path: str, mode: str = "w") -> Iterator[IO]:
    """Write ``path`` atomically: all of the new content or none of it.

    Yields an open handle onto a temp file in the destination's
    directory (same filesystem, so the final ``os.replace`` is atomic).
    When the ``with`` body completes, the temp file replaces ``path``;
    when it raises, the temp file is removed and ``path`` keeps its
    previous content (or stays absent).

    Parameters
    ----------
    path:
        Destination path; its directory is created if missing.
    mode:
        Open mode for the temp handle (``"w"`` or ``"wb"``).

    Examples
    --------
    >>> with atomic_write("store/entry.json") as handle:  # doctest: +SKIP
    ...     json.dump(payload, handle)
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    committed = False
    try:
        handle = os.fdopen(fd, mode)
        try:
            yield handle
        finally:
            handle.close()
        os.replace(tmp, path)
        committed = True
    finally:
        if not committed:
            try:
                os.remove(tmp)
            except OSError:
                pass
