"""Retry policy: bounded attempts, exponential backoff, seeded jitter.

One small immutable object, :class:`RetryPolicy`, describes how the
supervised :class:`~repro.api.pool.WorkerPool` treats a failing task:
how many attempts it gets, how long one attempt may run, and how long
to wait between attempts.  The backoff delay grows exponentially and
carries *deterministic* jitter -- a pure hash of the task key and
attempt number (:func:`~repro.faults.inject.decision_fraction`), not an
RNG draw -- so two runs of the same campaign retry on exactly the same
schedule.  Jitter still does its usual job of de-synchronizing retries
across *different* tasks, because different keys hash differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.inject import decision_fraction

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervised pool retries, times out, and backs off.

    Attributes
    ----------
    max_attempts:
        Total attempts per task (first run + retries), ``>= 1``.
    timeout:
        Per-task wait budget in seconds; ``None`` waits forever (a task
        lost to a genuinely dead worker then hangs, exactly like the
        unsupervised path -- set a timeout to survive real crashes).
    backoff_base:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per additional retry.
    backoff_max:
        Upper bound on the un-jittered delay.
    jitter:
        Fraction of the delay added as deterministic jitter, in
        ``[0, 1]``: the actual delay is ``d * (1 + jitter * u)`` with
        ``u`` a pure hash of (seed, key, attempt) in ``[0, 1)``.
    seed:
        Seed of the jitter hash.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        """Reject nonsensical policies at construction time."""
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` of ``key``.

        ``attempt`` counts retries from 0 (the delay before the first
        retry).  Deterministic: the same policy, key and attempt always
        produce the same delay.
        """
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** attempt,
        )
        jitter = self.jitter * decision_fraction(
            self.seed, "backoff", f"{key}:{attempt}"
        )
        return base * (1.0 + jitter)
