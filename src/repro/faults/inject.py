"""Deterministic, seeded fault injection for chaos testing.

Real campaigns die in boring ways: a worker process segfaults, a task
wedges, a cache file is half-written when the machine loses power.  The
supervision layer (:mod:`repro.api.pool`, the engines, the stores) is
supposed to absorb all of that -- but "supposed to" is untestable
unless the faults themselves are *reproducible*.  This module makes
them so: every injection decision is a pure function of a seed, the
fault kind, and a caller-supplied site key, computed as

    ``sha256(f"{seed}|{kind}|{key}")  ->  fraction in [0, 1)  <  rate``

so a chaos run replays bit-for-bit -- same crashes at the same task
attempts, same corrupt store entries -- with no RNG objects and no
hidden counters.

A :class:`FaultPlan` is parsed from a compact spec string::

    crash:0.05,hang:0.01:0.25,corrupt_store:0.02

where each comma-separated clause is ``kind:rate[:param]`` (``param``
is the hang duration in seconds; other kinds ignore it).  Plans
activate from the ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED`` environment
variables via :func:`refresh` -- called at the process boundaries
(session construction, CLI startup, worker dispatch) -- while the hot
paths only consult :func:`current`, a pure module-global read, so no
environment read is ever reachable from a fingerprint or store sink.

Injection sites are deliberately few and explicit:

* :func:`task_site` -- inside the worker dispatch shim, before the
  task body: may raise :class:`InjectedWorkerCrash` /
  :class:`InjectedTaskError` or sleep (``hang``).
* :func:`batch_site` -- on the engines' batch-model path: may raise
  :class:`InjectedBatchError`, exercising the batch -> scalar backend
  fallback.
* :func:`store_site` -- after a store write: may overwrite the
  just-written file with garbage, exercising quarantine + heal.

Every site keys on a stable identifier that includes the attempt or
write ordinal, so a *retried* task or a *recomputed* store entry draws
a fresh decision -- chaos runs converge instead of looping forever.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "ENV_SEED",
    "ENV_SPEC",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedBatchError",
    "InjectedFault",
    "InjectedTaskError",
    "InjectedWorkerCrash",
    "activate",
    "batch_site",
    "current",
    "decision_fraction",
    "refresh",
    "store_site",
    "task_site",
]

#: Environment variable holding the fault spec string.
ENV_SPEC = "REPRO_FAULTS"

#: Environment variable holding the injection seed (default ``0``).
ENV_SEED = "REPRO_FAULTS_SEED"

#: Recognized fault kinds, in the order sites evaluate them.
FAULT_KINDS: Tuple[str, ...] = (
    "crash", "hang", "task_error", "batch_error", "corrupt_store",
)

#: Seconds a ``hang`` fault sleeps when the clause gives no param.
DEFAULT_HANG_SECONDS = 0.2

#: Bytes written over a store entry by ``corrupt_store`` (invalid JSON,
#: so every store's corrupt-entry path fires on the next read).
_CORRUPT_PAYLOAD = "{corrupt-by-fault-injection"


class FaultSpecError(ValueError):
    """A fault spec string cannot be parsed (bad kind, rate, grammar)."""


class InjectedFault(RuntimeError):
    """Base class of every deliberately injected failure."""


class InjectedWorkerCrash(InjectedFault):
    """A simulated worker-process death (task is lost mid-flight)."""


class InjectedTaskError(InjectedFault):
    """A simulated transient task failure (retryable in place)."""


class InjectedBatchError(InjectedFault):
    """A simulated batch-backend failure (scalar fallback expected)."""


def decision_fraction(seed: int, kind: str, key: str) -> float:
    """The deterministic pseudo-random fraction of one decision site.

    Pure: ``sha256(f"{seed}|{kind}|{key}")`` mapped into ``[0, 1)``.
    Shared by fault decisions and the retry policy's jitter, so nothing
    in the fault layer owns RNG state.

    Parameters
    ----------
    seed:
        The plan (or policy) seed.
    kind:
        A short namespace label (fault kind, ``"backoff"``, ...).
    key:
        The caller's site key (task id + attempt, store key + ordinal).

    Returns
    -------
    float
        A value in ``[0, 1)``, identical across processes and runs.
    """
    digest = hashlib.sha256(
        f"{seed}|{kind}|{key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """One clause of a fault plan: a kind, a rate, an optional param.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Injection probability per decision site, in ``[0, 1]``.
    param:
        Clause-specific parameter (the ``hang`` sleep seconds); ``None``
        for clauses that take none.
    """

    kind: str
    rate: float
    param: Optional[float] = None


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, seeded set of fault rules (immutable).

    Attributes
    ----------
    rules:
        ``kind -> FaultRule`` for every clause in the spec.
    seed:
        Seed folded into every injection decision.
    """

    rules: Tuple[FaultRule, ...]
    seed: int = 0

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``kind:rate[:param],...`` into a plan.

        Parameters
        ----------
        spec:
            The spec string, e.g. ``"crash:0.05,hang:0.01:0.25"``.
        seed:
            Seed for every decision this plan makes.

        Returns
        -------
        FaultPlan
            The parsed plan.

        Raises
        ------
        FaultSpecError
            On unknown kinds, rates outside ``[0, 1]``, duplicate
            clauses, or malformed grammar.
        """
        rules: Dict[str, FaultRule] = {}
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            fields = clause.split(":")
            if len(fields) not in (2, 3):
                raise FaultSpecError(
                    f"bad fault clause {clause!r} (want kind:rate"
                    f"[:param])"
                )
            kind = fields[0].strip()
            if kind not in FAULT_KINDS:
                raise FaultSpecError(
                    f"unknown fault kind {kind!r} (known: "
                    + ", ".join(FAULT_KINDS) + ")"
                )
            if kind in rules:
                raise FaultSpecError(f"duplicate fault kind {kind!r}")
            try:
                rate = float(fields[1])
            except ValueError as exc:
                raise FaultSpecError(
                    f"bad rate in clause {clause!r}"
                ) from exc
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(
                    f"rate {rate!r} outside [0, 1] in clause {clause!r}"
                )
            param: Optional[float] = None
            if len(fields) == 3:
                try:
                    param = float(fields[2])
                except ValueError as exc:
                    raise FaultSpecError(
                        f"bad param in clause {clause!r}"
                    ) from exc
                if param < 0.0:
                    raise FaultSpecError(
                        f"negative param in clause {clause!r}"
                    )
            rules[kind] = FaultRule(kind=kind, rate=rate, param=param)
        if not rules:
            raise FaultSpecError(f"empty fault spec {spec!r}")
        ordered = tuple(rules[k] for k in FAULT_KINDS if k in rules)
        return cls(rules=ordered, seed=seed)

    def rule(self, kind: str) -> Optional[FaultRule]:
        """The rule for ``kind``, or ``None`` when the plan has none."""
        for rule in self.rules:
            if rule.kind == kind:
                return rule
        return None

    def decide(self, kind: str, key: str) -> bool:
        """Whether to inject ``kind`` at decision site ``key``.

        Deterministic: the same plan, kind and key always agree, in
        any process, in any order.
        """
        rule = self.rule(kind)
        if rule is None or rule.rate <= 0.0:
            return False
        return decision_fraction(self.seed, kind, key) < rule.rate

    def param(self, kind: str, default: float) -> float:
        """The param of ``kind``'s clause, or ``default``."""
        rule = self.rule(kind)
        if rule is None or rule.param is None:
            return default
        return rule.param

    def spec(self) -> str:
        """The canonical spec string this plan round-trips to."""
        clauses = []
        for rule in self.rules:
            clause = f"{rule.kind}:{rule.rate:g}"
            if rule.param is not None:
                clause += f":{rule.param:g}"
            clauses.append(clause)
        return ",".join(clauses)


# ----------------------------------------------------------------------
# Activation: environment at the boundaries, pure reads on hot paths
# ----------------------------------------------------------------------

#: The active plan plus the (spec, seed) environment strings it was
#: parsed from (``None`` strings for an explicitly activated plan).
_ACTIVE: Dict[str, object] = {"plan": None, "spec": None, "seed": None}


def refresh() -> Optional[FaultPlan]:
    """Synchronize the active plan with the environment.

    Reads ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED`` and re-parses only
    when either string changed since the last call.  Called at process
    boundaries (session construction, CLI startup, worker dispatch) --
    never from store or fingerprint code paths, which read
    :func:`current` instead.

    Returns
    -------
    FaultPlan or None
        The now-active plan (``None`` when no spec is set).

    Raises
    ------
    FaultSpecError
        When the environment spec is set but malformed -- a chaos
        harness that silently ignores a typoed spec certifies nothing.
    """
    spec = os.environ.get(ENV_SPEC)
    seed = os.environ.get(ENV_SEED)
    if _ACTIVE["spec"] == spec and _ACTIVE["seed"] == seed:
        return _ACTIVE["plan"]  # type: ignore[return-value]
    plan = None
    if spec:
        plan = FaultPlan.parse(spec, seed=int(seed or "0"))
    _ACTIVE["plan"] = plan
    _ACTIVE["spec"] = spec
    _ACTIVE["seed"] = seed
    return plan


def activate(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the active plan, bypassing the environment.

    Test hook: the next :func:`refresh` re-syncs with the environment,
    so explicit activation lasts until the next process boundary.

    Returns
    -------
    FaultPlan or None
        The previously active plan (restore it when done).
    """
    previous = _ACTIVE["plan"]
    _ACTIVE["plan"] = plan
    _ACTIVE["spec"] = object()  # force the next refresh() to re-read
    _ACTIVE["seed"] = None
    return previous  # type: ignore[return-value]


def current() -> Optional[FaultPlan]:
    """The active plan (a pure module-global read, no environment)."""
    return _ACTIVE["plan"]  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Injection sites
# ----------------------------------------------------------------------


def task_site(key: str) -> None:
    """Fault decision point at the start of one worker task attempt.

    ``key`` must be unique per (stage, task, attempt) so retried tasks
    draw fresh decisions.  May raise :class:`InjectedWorkerCrash` or
    :class:`InjectedTaskError`, or sleep for the ``hang`` param.
    """
    plan = current()
    if plan is None:
        return
    if plan.decide("crash", key):
        obs.metrics().inc("faults.injected.crash")
        raise InjectedWorkerCrash(f"injected worker crash at {key}")
    if plan.decide("hang", key):
        obs.metrics().inc("faults.injected.hang")
        time.sleep(plan.param("hang", DEFAULT_HANG_SECONDS))
    if plan.decide("task_error", key):
        obs.metrics().inc("faults.injected.task_error")
        raise InjectedTaskError(f"injected task error at {key}")


def batch_site(key: str) -> None:
    """Fault decision point on the engines' batch-model path.

    May raise :class:`InjectedBatchError`; the caller's batch -> scalar
    fallback re-evaluates the chunk on the reference backend.
    """
    plan = current()
    if plan is None:
        return
    if plan.decide("batch_error", key):
        obs.metrics().inc("faults.injected.batch_error")
        raise InjectedBatchError(f"injected batch error at {key}")


def store_site(path: str, key: str) -> bool:
    """Fault decision point after one store write.

    When the plan injects ``corrupt_store`` at ``key``, the file at
    ``path`` is overwritten with invalid JSON -- simulating a torn
    write that the atomic rename cannot help with (e.g. media
    corruption), so the store's quarantine + heal path gets exercised.
    ``key`` must include a lifetime write ordinal so a *recomputed*
    entry draws a fresh decision and the store converges.

    Returns
    -------
    bool
        Whether the file was corrupted.
    """
    plan = current()
    if plan is None or not plan.decide("corrupt_store", key):
        return False
    with open(path, "w") as handle:
        handle.write(_CORRUPT_PAYLOAD)
    obs.metrics().inc("faults.injected.corrupt_store")
    return True
