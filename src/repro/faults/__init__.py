"""Fault tolerance: injection, retry policy, and crash-safe writes.

The robustness layer under the execution path.  Three pieces:

* :mod:`repro.faults.inject` -- the deterministic fault-injection
  harness (:class:`FaultPlan`, the ``REPRO_FAULTS`` spec grammar, and
  the task / batch / store injection sites).  Chaos runs replay
  bit-for-bit because every decision is a pure seeded hash.
* :mod:`repro.faults.policy` -- :class:`RetryPolicy`: bounded attempts,
  per-task timeouts, exponential backoff with deterministic jitter,
  consumed by the supervised :class:`~repro.api.pool.WorkerPool`.
* :mod:`repro.faults.atomic` -- :func:`atomic_write`, the temp-file +
  rename primitive behind every store write, so a crash never leaves a
  half-written cache entry.

See ``docs/robustness.md`` for the failure model and the recovery
semantics end to end.
"""

from repro.faults.atomic import atomic_write
from repro.faults.inject import (
    DEFAULT_HANG_SECONDS,
    ENV_SEED,
    ENV_SPEC,
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedBatchError,
    InjectedFault,
    InjectedTaskError,
    InjectedWorkerCrash,
    activate,
    batch_site,
    current,
    decision_fraction,
    refresh,
    store_site,
    task_site,
)
from repro.faults.policy import RetryPolicy

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "ENV_SEED",
    "ENV_SPEC",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedBatchError",
    "InjectedFault",
    "InjectedTaskError",
    "InjectedWorkerCrash",
    "RetryPolicy",
    "activate",
    "atomic_write",
    "batch_site",
    "current",
    "decision_fraction",
    "refresh",
    "store_site",
    "task_site",
]
