"""The 29-workload synthetic suite (SPEC CPU 2006 stand-in).

Each entry mirrors a SPEC CPU 2006 benchmark by name (suffixed ``_like``
nowhere -- the paper's figures are keyed by the SPEC names, so we keep them)
and is parameterized to land in the same qualitative region the thesis
reports for that benchmark:

* uops/instruction between ~1.05 and ~1.4 (Fig 3.1), via the fraction of
  load-op / op-store macro forms;
* dependence-chain length (Fig 3.4) via explicit register chains;
* memory behaviour (Fig 4.2 MPKI, Fig 4.7 stride categories) via working
  set size and address patterns (streaming stride, multi-stride, random,
  pointer chase, unique);
* branch predictability (Fig 3.9/3.10) via branch outcome patterns.

These are synthetic substitutes: absolute numbers will not match SPEC, but
the spread of behaviours exercises every model component the paper needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa import MacroOp
from repro.workloads.generator import (
    AluSpec,
    BranchSpec,
    KernelSpec,
    LoadSpec,
    Slot,
    StoreSpec,
    WorkloadSpec,
)

KB = 1024
MB = 1024 * KB


def _compute_chain(
    start_reg: int, length: int, op: MacroOp, feed_reg: int
) -> List[Slot]:
    """A serial dependence chain of ``length`` compute ops.

    The first op consumes ``feed_reg``; each subsequent op consumes its
    predecessor, producing a chain that sets the critical path.
    """
    body: List[Slot] = []
    prev = feed_reg
    for i in range(length):
        dst = start_reg + (i % 4)
        body.append(AluSpec(op=op, dst=dst, srcs=(prev,)))
        prev = dst
    return body


def _parallel_alus(n: int, op: MacroOp, base_reg: int) -> List[Slot]:
    """``n`` mutually independent compute ops (ILP filler)."""
    return [AluSpec(op=op, dst=base_reg + i, srcs=()) for i in range(n)]


def _body(
    *,
    loads: List[LoadSpec],
    chain_len: int = 2,
    chain_op: MacroOp = MacroOp.INT_ALU,
    ilp: int = 2,
    ilp_op: MacroOp = MacroOp.INT_ALU,
    load_op_forms: int = 0,
    stores: Optional[List[StoreSpec]] = None,
    divides: int = 0,
    fp_muls: int = 0,
    branches: Optional[List[BranchSpec]] = None,
    accumulate: bool = False,
) -> List[Slot]:
    """Assemble a kernel body from high-level ingredients.

    ``accumulate`` adds a loop-carried reduction (``acc = acc + x``) whose
    chain grows across iterations, producing the long critical paths the
    thesis measures for compute benchmarks (Fig 3.4).
    """
    body: List[Slot] = []
    body.extend(loads)
    feed = loads[0].dst if loads else 1
    body.extend(_compute_chain(8, chain_len, chain_op, feed))
    if accumulate:
        body.append(AluSpec(op=chain_op, dst=15, srcs=(15, 8)))
    body.extend(_parallel_alus(ilp, ilp_op, 12))
    for i in range(load_op_forms):
        body.append(
            LoadSpec(
                dst=4 + (i % 2),
                pattern="stride",
                strides=(8,),
                region=8 * KB,
                base=0x900000 + i * 16 * KB,
                op=MacroOp.INT_ALU_LOAD,
            )
        )
    for i in range(fp_muls):
        body.append(AluSpec(op=MacroOp.FP_MUL, dst=6 + (i % 2), srcs=(8,)))
    for i in range(divides):
        body.append(AluSpec(op=MacroOp.DIV, dst=7, srcs=(9,)))
    body.extend(stores or [])
    body.extend(branches or [])
    body.append(BranchSpec(pattern="loop"))
    return body


def _streaming(name: str, region: int, stride: int, fp: bool, seed: int) -> WorkloadSpec:
    """Streaming kernels: long unit/large-stride scans over a big array."""
    body = _body(
        loads=[
            LoadSpec(dst=1, pattern="stride", strides=(stride,),
                     region=region, base=0x100000),
            LoadSpec(dst=2, pattern="stride", strides=(stride,),
                     region=region, base=0x100000 + region),
        ],
        chain_len=3,
        chain_op=MacroOp.FP_ALU if fp else MacroOp.INT_ALU,
        ilp=3,
        fp_muls=2 if fp else 0,
        load_op_forms=1,
        stores=[StoreSpec(pattern="stride", strides=(stride,),
                          region=region, base=0x100000 + 2 * region,
                          srcs=(8,))],
        accumulate=fp,
    )
    return WorkloadSpec(name=name, kernels=[KernelSpec(name, body)], seed=seed)


def _pointer_chase(name: str, region: int, chains: int, seed: int) -> WorkloadSpec:
    """Pointer-chasing kernels: dependent loads, low MLP, poor locality."""
    loads = [
        LoadSpec(dst=1 + i, pattern="chase", region=region,
                 base=0x200000 + i * region)
        for i in range(chains)
    ]
    body = _body(
        loads=loads,
        chain_len=4,
        ilp=1,
        load_op_forms=1,
        branches=[BranchSpec(pattern="random", taken_prob=0.4, srcs=(1,))],
    )
    return WorkloadSpec(name=name, kernels=[KernelSpec(name, body)], seed=seed)


def _fp_compute(name: str, chain_len: int, fp_muls: int, divides: int,
                ws: int, seed: int) -> WorkloadSpec:
    """FP compute kernels: long FP chains, cache-resident working set."""
    body = _body(
        loads=[LoadSpec(dst=1, pattern="stride", strides=(8,),
                        region=ws, base=0x300000,
                        op=MacroOp.FP_ALU_LOAD)],
        chain_len=chain_len,
        chain_op=MacroOp.FP_ALU,
        ilp=2,
        ilp_op=MacroOp.FP_MUL,
        fp_muls=fp_muls,
        divides=divides,
        stores=[StoreSpec(pattern="stride", strides=(8,), region=ws,
                          base=0x380000, srcs=(8,))],
        accumulate=True,
    )
    return WorkloadSpec(name=name, kernels=[KernelSpec(name, body)], seed=seed)


def _branchy_int(name: str, ws: int, entropy: float, multi: bool,
                 seed: int) -> WorkloadSpec:
    """Branchy integer kernels: random-ish branches, mixed locality."""
    strides = (8, 24, 8, 64) if multi else (16,)
    body = _body(
        loads=[
            LoadSpec(dst=1, pattern="multi_stride" if multi else "stride",
                     strides=strides, region=ws, base=0x400000),
            LoadSpec(dst=2, pattern="random", region=ws // 2,
                     base=0x500000),
        ],
        chain_len=2,
        ilp=3,
        load_op_forms=2,
        stores=[StoreSpec(pattern="random", region=ws // 4,
                          base=0x600000, srcs=(9,))],
        branches=[
            BranchSpec(pattern="random", taken_prob=entropy, srcs=(9,)),
            BranchSpec(pattern="periodic", period=3),
        ],
    )
    return WorkloadSpec(name=name, kernels=[KernelSpec(name, body)], seed=seed)


def _phased(name: str, seed: int) -> WorkloadSpec:
    """Two alternating kernels -> visible CPI phases (thesis §6.5)."""
    compute = KernelSpec(
        f"{name}.compute",
        _body(
            loads=[LoadSpec(dst=1, pattern="stride", strides=(8,),
                            region=16 * KB, base=0x700000)],
            chain_len=5,
            chain_op=MacroOp.FP_ALU,
            fp_muls=2,
        ),
        pc_base=0x7000,
    )
    memory = KernelSpec(
        f"{name}.memory",
        _body(
            loads=[
                LoadSpec(dst=1, pattern="stride", strides=(64,),
                         region=32 * MB, base=0x800000),
                LoadSpec(dst=2, pattern="stride", strides=(64,),
                         region=32 * MB, base=0x2800000),
            ],
            chain_len=1,
            ilp=2,
        ),
        pc_base=0x8000,
    )
    return WorkloadSpec(name=name, kernels=[compute, memory],
                        rounds=3, seed=seed)


#: Registry: benchmark name -> factory(seed) -> WorkloadSpec.
SUITE: Dict[str, object] = {
    # streaming / memory bandwidth bound
    "bwaves": lambda s: _streaming("bwaves", 24 * MB, 64, True, s),
    "lbm": lambda s: _streaming("lbm", 32 * MB, 64, True, s),
    "leslie3d": lambda s: _streaming("leslie3d", 16 * MB, 64, True, s),
    "libquantum": lambda s: _streaming("libquantum", 32 * MB, 64, False, s),
    "milc": lambda s: _streaming("milc", 24 * MB, 128, True, s),
    "GemsFDTD": lambda s: _streaming("GemsFDTD", 24 * MB, 192, True, s),
    "wrf": lambda s: _streaming("wrf", 8 * MB, 64, True, s),
    "zeusmp": lambda s: _streaming("zeusmp", 12 * MB, 64, True, s),
    # pointer chasing / latency bound
    "mcf": lambda s: _pointer_chase("mcf", 48 * MB, 1, s),
    "omnetpp": lambda s: _pointer_chase("omnetpp", 24 * MB, 2, s),
    "xalancbmk": lambda s: _pointer_chase("xalancbmk", 16 * MB, 2, s),
    "astar": lambda s: _phased("astar", s),
    "soplex": lambda s: _pointer_chase("soplex", 12 * MB, 3, s),
    # FP compute, cache resident
    "gamess": lambda s: _fp_compute("gamess", 6, 3, 0, 24 * KB, s),
    "gromacs": lambda s: _fp_compute("gromacs", 4, 2, 1, 32 * KB, s),
    "namd": lambda s: _fp_compute("namd", 3, 4, 0, 64 * KB, s),
    "povray": lambda s: _fp_compute("povray", 5, 2, 1, 48 * KB, s),
    "calculix": lambda s: _fp_compute("calculix", 7, 2, 0, 96 * KB, s),
    "dealII": lambda s: _fp_compute("dealII", 4, 3, 0, 192 * KB, s),
    "tonto": lambda s: _fp_compute("tonto", 5, 3, 1, 64 * KB, s),
    "sphinx3": lambda s: _fp_compute("sphinx3", 3, 2, 0, 512 * KB, s),
    "cactusADM": lambda s: _fp_compute("cactusADM", 9, 4, 0, 2 * MB, s),
    # branchy integer
    "bzip2": lambda s: _branchy_int("bzip2", 1 * MB, 0.35, True, s),
    "gcc": lambda s: _branchy_int("gcc", 4 * MB, 0.45, True, s),
    "gobmk": lambda s: _branchy_int("gobmk", 256 * KB, 0.5, False, s),
    "h264ref": lambda s: _branchy_int("h264ref", 512 * KB, 0.25, True, s),
    "hmmer": lambda s: _branchy_int("hmmer", 128 * KB, 0.1, False, s),
    "perlbench": lambda s: _branchy_int("perlbench", 2 * MB, 0.4, True, s),
    "sjeng": lambda s: _branchy_int("sjeng", 256 * KB, 0.5, False, s),
}


def workload_names() -> List[str]:
    """The 29 benchmark names, in a stable order."""
    return sorted(SUITE.keys())


def make_workload(name: str, seed: int = 42) -> WorkloadSpec:
    """Build the spec for one named workload."""
    try:
        factory = SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        ) from None
    return factory(seed)


def make_suite(seed: int = 42) -> List[WorkloadSpec]:
    """Build all 29 workload specs."""
    return [make_workload(name, seed) for name in workload_names()]
