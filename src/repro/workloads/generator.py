"""Parameterized synthetic trace generation.

Workloads are expressed as loop kernels of static instruction slots.  A
kernel iterates its body, so static PCs recur with controllable memory
strides, register dependence chains and branch outcome patterns -- exactly
the structure the micro-architecture independent profiler measures
(instruction mix, AP/ABP/CP chains, stride distributions, reuse distances,
branch entropy).

Dependences are explicit: every slot names its destination register and its
source registers, so the static dataflow graph of the kernel (and hence the
dependence-chain statistics of the trace) is fully determined by the spec.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.isa import Instruction, MacroOp
from repro.workloads.trace import Trace

_CACHE_LINE = 64


@dataclass(frozen=True)
class AluSpec:
    """A compute slot (integer/FP ALU, multiply, divide or move)."""

    op: MacroOp
    dst: int
    srcs: Tuple[int, ...] = ()


@dataclass(frozen=True)
class LoadSpec:
    """A load slot with an address pattern.

    Patterns
    --------
    ``stride``
        Address advances by ``strides[0]`` bytes per recurrence.
    ``multi_stride``
        Address advances cycling through ``strides``.
    ``random``
        Uniform random address in ``[base, base + region)``.
    ``chase``
        Pointer chase: random address, and the load depends on its own
        previous instance (its destination register is added to its
        sources), serializing successive misses.
    ``unique``
        Address advances by one cache line and never wraps, so every
        access touches a new line (cold-miss generator).
    """

    dst: int
    pattern: str = "stride"
    strides: Tuple[int, ...] = (_CACHE_LINE,)
    region: int = 1 << 14
    base: int = 0
    srcs: Tuple[int, ...] = ()
    op: MacroOp = MacroOp.LOAD


@dataclass(frozen=True)
class StoreSpec:
    """A store slot; address patterns as for :class:`LoadSpec`."""

    pattern: str = "stride"
    strides: Tuple[int, ...] = (_CACHE_LINE,)
    region: int = 1 << 14
    base: int = 0
    srcs: Tuple[int, ...] = ()
    op: MacroOp = MacroOp.STORE


@dataclass(frozen=True)
class BranchSpec:
    """A conditional branch slot with an outcome pattern.

    Patterns
    --------
    ``loop``
        Taken except on the kernel's last iteration (highly predictable).
    ``periodic``
        Taken every ``period``-th execution (predictable with history).
    ``random``
        Taken with probability ``taken_prob`` (entropy source).
    ``biased``
        Same as random; conventional name for skewed probabilities.
    """

    pattern: str = "loop"
    period: int = 2
    taken_prob: float = 0.5
    srcs: Tuple[int, ...] = ()


Slot = Union[AluSpec, LoadSpec, StoreSpec, BranchSpec]


@dataclass
class KernelSpec:
    """A loop kernel: a static body executed for ``iterations`` passes."""

    name: str
    body: List[Slot]
    iterations: int = 1000
    pc_base: int = 0x1000


@dataclass
class WorkloadSpec:
    """A workload: a sequence of kernels executed back to back.

    Repeating the kernel sequence (``rounds > 1``) creates phase behaviour
    (thesis §6.5) and data reuse across kernel instances.
    """

    name: str
    kernels: List[KernelSpec]
    rounds: int = 1
    seed: int = 42


class _SlotState:
    """Mutable per-static-slot generation state (address cursors)."""

    __slots__ = ("cursor", "stride_index")

    def __init__(self) -> None:
        self.cursor = 0
        self.stride_index = 0


def _next_address(
    spec: Union[LoadSpec, StoreSpec],
    state: _SlotState,
    rng: random.Random,
) -> int:
    pattern = spec.pattern
    if pattern in ("stride", "multi_stride"):
        addr = spec.base + state.cursor % max(spec.region, 1)
        stride = spec.strides[state.stride_index % len(spec.strides)]
        state.stride_index += 1
        state.cursor += stride
        return addr
    if pattern in ("random", "chase"):
        offset = rng.randrange(0, max(spec.region // 8, 1)) * 8
        return spec.base + offset
    if pattern == "unique":
        addr = spec.base + state.cursor
        state.cursor += _CACHE_LINE
        return addr
    raise ValueError(f"unknown address pattern: {pattern!r}")


def _branch_taken(
    spec: BranchSpec,
    execution_index: int,
    last_iteration: bool,
    rng: random.Random,
) -> bool:
    if spec.pattern == "loop":
        return not last_iteration
    if spec.pattern == "periodic":
        return execution_index % spec.period == 0
    if spec.pattern in ("random", "biased"):
        return rng.random() < spec.taken_prob
    raise ValueError(f"unknown branch pattern: {spec.pattern!r}")


def generate_kernel(
    kernel: KernelSpec,
    rng: random.Random,
    out: List[Instruction],
) -> None:
    """Append the dynamic instructions of one kernel run to ``out``."""
    states = [_SlotState() for _ in kernel.body]
    exec_counts = [0] * len(kernel.body)
    for iteration in range(kernel.iterations):
        last = iteration == kernel.iterations - 1
        for slot_index, slot in enumerate(kernel.body):
            pc = kernel.pc_base + 4 * slot_index
            if isinstance(slot, AluSpec):
                srcs = slot.srcs
                out.append(
                    Instruction(
                        pc=pc,
                        op=slot.op,
                        dst=slot.dst,
                        src1=srcs[0] if len(srcs) > 0 else -1,
                        src2=srcs[1] if len(srcs) > 1 else -1,
                    )
                )
            elif isinstance(slot, LoadSpec):
                addr = _next_address(slot, states[slot_index], rng)
                srcs = slot.srcs
                if slot.pattern == "chase":
                    # Pointer chase: next address comes from loaded value.
                    srcs = tuple(srcs) + (slot.dst,)
                out.append(
                    Instruction(
                        pc=pc,
                        op=slot.op,
                        dst=slot.dst,
                        src1=srcs[0] if len(srcs) > 0 else -1,
                        src2=srcs[1] if len(srcs) > 1 else -1,
                        addr=addr,
                    )
                )
            elif isinstance(slot, StoreSpec):
                addr = _next_address(slot, states[slot_index], rng)
                srcs = slot.srcs
                out.append(
                    Instruction(
                        pc=pc,
                        op=slot.op,
                        dst=-1,
                        src1=srcs[0] if len(srcs) > 0 else -1,
                        src2=srcs[1] if len(srcs) > 1 else -1,
                        addr=addr,
                    )
                )
            elif isinstance(slot, BranchSpec):
                taken = _branch_taken(
                    slot, exec_counts[slot_index], last, rng
                )
                srcs = slot.srcs
                out.append(
                    Instruction(
                        pc=pc,
                        op=MacroOp.BRANCH,
                        dst=-1,
                        src1=srcs[0] if len(srcs) > 0 else -1,
                        src2=srcs[1] if len(srcs) > 1 else -1,
                        taken=taken,
                    )
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown slot type: {type(slot)!r}")
            exec_counts[slot_index] += 1


def generate_trace(spec: WorkloadSpec, max_instructions: Optional[int] = None) -> Trace:
    """Generate the dynamic instruction trace of a workload spec.

    When ``max_instructions`` is given it is a *target length*: the kernel
    sequence is repeated as many times as needed and the trace truncated to
    exactly that many instructions, which keeps specs reusable at different
    scales (tests vs benchmarks).
    """
    rng = random.Random(spec.seed)
    out: List[Instruction] = []
    if max_instructions is None:
        for _ in range(spec.rounds):
            for kernel in spec.kernels:
                generate_kernel(kernel, rng, out)
        return Trace(out, name=spec.name, seed=spec.seed)

    while len(out) < max_instructions:
        before = len(out)
        for kernel in spec.kernels:
            generate_kernel(kernel, rng, out)
            if len(out) >= max_instructions:
                break
        if len(out) == before:  # pragma: no cover - empty spec guard
            raise ValueError("workload spec generated no instructions")
    return Trace(out[:max_instructions], name=spec.name, seed=spec.seed)
