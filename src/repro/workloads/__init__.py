"""Synthetic workload substrate (SPEC CPU 2006 substitute).

The paper profiles SPEC CPU 2006 binaries with a Pin tool.  Neither the
binaries nor Pin are available here, so this package provides parameterized
synthetic trace generators whose traces exercise the same profile machinery:
instruction mixes with CISC cracking, register dependence chains, strided /
random / pointer-chasing memory behaviour, and branches with controllable
predictability.
"""

from repro.workloads.columns import TraceColumns
from repro.workloads.trace import Trace, TraceStats
from repro.workloads.generator import (
    BranchSpec,
    KernelSpec,
    LoadSpec,
    StoreSpec,
    WorkloadSpec,
    generate_trace,
)
from repro.workloads.suite import (
    SUITE,
    workload_names,
    make_workload,
    make_suite,
)

__all__ = [
    "Trace",
    "TraceColumns",
    "TraceStats",
    "BranchSpec",
    "KernelSpec",
    "LoadSpec",
    "StoreSpec",
    "WorkloadSpec",
    "generate_trace",
    "SUITE",
    "workload_names",
    "make_workload",
    "make_suite",
]
