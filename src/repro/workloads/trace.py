"""Trace container and summary statistics.

A :class:`Trace` is an in-memory dynamic instruction stream -- the unit of
work every profiler and simulator in this package consumes.  Traces are
immutable once built; all tools iterate over them without mutation so one
trace can feed the profiler, the reference simulator and validation tools.

A trace keeps two interchangeable representations of the same stream:

* the **object view** -- a list of :class:`~repro.isa.Instruction` --
  for the cycle-level simulator and any per-instruction consumer;
* the **columnar view** -- :class:`~repro.workloads.columns.TraceColumns`
  structure-of-arrays -- for the vectorized profiling passes.

Either view is built lazily from the other and cached, and pickling
always ships the columnar form (seven flat arrays) rather than the
object list, so worker processes receive compact buffers and rebuild
``Instruction`` objects only if they actually iterate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.isa import Instruction, MacroOp, UopKind, crack, uop_count
from repro.workloads.columns import TraceColumns


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of a trace (exact, unsampled)."""

    num_instructions: int
    num_uops: int
    macro_mix: Dict[MacroOp, int]
    uop_mix: Dict[UopKind, int]
    num_branches: int
    num_loads: int
    num_stores: int

    @property
    def uops_per_instruction(self) -> float:
        if self.num_instructions == 0:
            return 0.0
        return self.num_uops / self.num_instructions

    def uop_fraction(self, kind: UopKind) -> float:
        if self.num_uops == 0:
            return 0.0
        return self.uop_mix.get(kind, 0) / self.num_uops


class Trace:
    """An immutable dynamic instruction stream with a name and metadata."""

    def __init__(
        self,
        instructions: Optional[Sequence[Instruction]] = None,
        name: str = "anonymous",
        seed: int = 0,
        columns: Optional[TraceColumns] = None,
    ) -> None:
        if instructions is None and columns is None:
            raise ValueError("need instructions or columns")
        self._instructions: Optional[List[Instruction]] = (
            list(instructions) if instructions is not None else None
        )
        self._columns: Optional[TraceColumns] = columns
        self.name = name
        self.seed = seed
        self._stats: Optional[TraceStats] = None  # lazily computed

    def __len__(self) -> int:
        if self._instructions is not None:
            return len(self._instructions)
        return len(self._columns)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index):
        if isinstance(index, slice):
            name = f"{self.name}[{index.start}:{index.stop}]"
            if self._instructions is not None:
                sliced = Trace(self._instructions[index], name=name,
                               seed=self.seed)
                if (self._columns is not None
                        and (index.step is None or index.step == 1)):
                    sliced._columns = self._columns[index]
                return sliced
            return Trace(name=name, seed=self.seed,
                         columns=self._columns[index])
        return self.instructions[index]

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, n={len(self)})"

    @property
    def instructions(self) -> Sequence[Instruction]:
        """The object view (materialized from columns when needed)."""
        if self._instructions is None:
            self._instructions = self._columns.instructions()
        return self._instructions

    def columns(self) -> TraceColumns:
        """The columnar (structure-of-arrays) view, built once and cached."""
        if self._columns is None:
            self._columns = TraceColumns.from_instructions(
                self._instructions
            )
        return self._columns

    def stats(self) -> TraceStats:
        """Compute (and cache) exact whole-trace statistics.

        One columnar pass: a ``bincount`` over the macro-op codes gives
        the macro mix, and the uop mix follows from the static cracking
        templates -- no per-instruction Python loop.
        """
        if self._stats is None:
            columns = self.columns()
            op_counts = np.bincount(
                columns.op, minlength=len(MacroOp)
            ).tolist()
            macro_mix: Dict[MacroOp, int] = {}
            uop_mix: Dict[UopKind, int] = {}
            num_uops = 0
            for code, count in enumerate(op_counts):
                if not count:
                    continue
                op = MacroOp(code)
                macro_mix[op] = count
                num_uops += uop_count(op) * count
                for kind in crack(op):
                    uop_mix[kind] = uop_mix.get(kind, 0) + count
            self._stats = TraceStats(
                num_instructions=len(self),
                num_uops=num_uops,
                macro_mix=macro_mix,
                uop_mix=uop_mix,
                num_branches=int(np.count_nonzero(columns.is_branch)),
                num_loads=int(np.count_nonzero(columns.is_load)),
                num_stores=int(np.count_nonzero(columns.is_store)),
            )
        return self._stats

    def windows(self, window_size: int) -> Iterator["Trace"]:
        """Yield consecutive window-sized sub-traces (last may be short)."""
        for start in range(0, len(self), window_size):
            yield self[start:start + window_size]

    # -- pickling: ship columns, not object lists -----------------------

    def __getstate__(self):
        """Pickle the columnar view only (compact, array-backed)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "columns": self.columns(),
            "stats": self._stats,
        }

    def __setstate__(self, state) -> None:
        self.name = state["name"]
        self.seed = state["seed"]
        self._columns = state["columns"]
        self._instructions = None
        self._stats = state["stats"]
