"""Trace container and summary statistics.

A :class:`Trace` is an in-memory dynamic instruction stream -- the unit of
work every profiler and simulator in this package consumes.  Traces are
immutable once built; all tools iterate over them without mutation so one
trace can feed the profiler, the reference simulator and validation tools.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.isa import Instruction, MacroOp, UopKind, crack


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of a trace (exact, unsampled)."""

    num_instructions: int
    num_uops: int
    macro_mix: Dict[MacroOp, int]
    uop_mix: Dict[UopKind, int]
    num_branches: int
    num_loads: int
    num_stores: int

    @property
    def uops_per_instruction(self) -> float:
        if self.num_instructions == 0:
            return 0.0
        return self.num_uops / self.num_instructions

    def uop_fraction(self, kind: UopKind) -> float:
        if self.num_uops == 0:
            return 0.0
        return self.uop_mix.get(kind, 0) / self.num_uops


class Trace:
    """An immutable dynamic instruction stream with a name and metadata."""

    def __init__(
        self,
        instructions: Sequence[Instruction],
        name: str = "anonymous",
        seed: int = 0,
    ) -> None:
        self._instructions: List[Instruction] = list(instructions)
        self.name = name
        self.seed = seed
        self._stats: TraceStats = None  # lazily computed

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(
                self._instructions[index],
                name=f"{self.name}[{index.start}:{index.stop}]",
                seed=self.seed,
            )
        return self._instructions[index]

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, n={len(self)})"

    @property
    def instructions(self) -> Sequence[Instruction]:
        return self._instructions

    def stats(self) -> TraceStats:
        """Compute (and cache) exact whole-trace statistics."""
        if self._stats is None:
            macro_mix: Counter = Counter()
            uop_mix: Counter = Counter()
            num_uops = 0
            num_branches = 0
            num_loads = 0
            num_stores = 0
            for instr in self._instructions:
                macro_mix[instr.op] += 1
                uops = crack(instr.op)
                num_uops += len(uops)
                for kind in uops:
                    uop_mix[kind] += 1
                if instr.is_branch:
                    num_branches += 1
                if instr.is_load:
                    num_loads += 1
                if instr.is_store:
                    num_stores += 1
            self._stats = TraceStats(
                num_instructions=len(self._instructions),
                num_uops=num_uops,
                macro_mix=dict(macro_mix),
                uop_mix=dict(uop_mix),
                num_branches=num_branches,
                num_loads=num_loads,
                num_stores=num_stores,
            )
        return self._stats

    def windows(self, window_size: int) -> Iterator["Trace"]:
        """Yield consecutive window-sized sub-traces (last may be short)."""
        for start in range(0, len(self), window_size):
            yield self[start:start + window_size]
