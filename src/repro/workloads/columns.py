"""Columnar (structure-of-arrays) trace backend.

Python-object traces -- lists of :class:`~repro.isa.Instruction` -- are
convenient but slow to scan: every profiling pass pays an attribute
lookup per field per instruction.  :class:`TraceColumns` stores the same
stream as parallel NumPy arrays (one per instruction field) so the
profiling hot loops (reuse distances, cold misses, stride profiling)
become a handful of vectorized sweeps, and shipping a trace to a worker
process pickles seven flat arrays instead of hundreds of thousands of
objects.

A :class:`~repro.workloads.trace.Trace` builds its columns once on
demand and caches them; ``Instruction`` iteration stays available as a
compatibility view (:meth:`TraceColumns.instructions` materializes the
object list back).  Both representations are lossless, so every
profiler output is bitwise identical whichever one feeds it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa import Instruction, MacroOp

#: Per-macro-op lookup tables indexed by ``int(op)``; boolean table
#: lookup vectorizes the ``Instruction.is_load`` family of predicates.
_NUM_OPS = len(MacroOp)
_LOAD_TABLE = np.zeros(_NUM_OPS, dtype=bool)
for _op in (MacroOp.LOAD, MacroOp.INT_ALU_LOAD, MacroOp.FP_ALU_LOAD):
    _LOAD_TABLE[int(_op)] = True
_STORE_TABLE = np.zeros(_NUM_OPS, dtype=bool)
for _op in (MacroOp.STORE, MacroOp.INT_ALU_STORE):
    _STORE_TABLE[int(_op)] = True
_BRANCH_TABLE = np.zeros(_NUM_OPS, dtype=bool)
_BRANCH_TABLE[int(MacroOp.BRANCH)] = True

#: ``MacroOp`` instances by code, so materializing instructions avoids
#: one enum construction per record.
_OPS_BY_CODE: Tuple[MacroOp, ...] = tuple(MacroOp(code)
                                          for code in range(_NUM_OPS))


class TraceColumns:
    """One dynamic instruction stream as parallel NumPy arrays.

    Attributes
    ----------
    pc, addr:
        ``int64`` static instruction address / effective memory address.
    op:
        ``int16`` macro-op code (``int(MacroOp)``).
    dst, src1, src2:
        ``int32`` architectural register numbers, ``-1`` when unused.
    taken:
        ``bool`` branch outcome (meaningful for branches only).

    Derived boolean masks (``is_load``, ``is_store``, ``is_mem``,
    ``is_branch``) are computed lazily from ``op`` and cached.
    Instances are cheap views when sliced: ``columns[a:b]`` shares the
    underlying arrays.
    """

    __slots__ = ("pc", "op", "dst", "src1", "src2", "addr", "taken",
                 "_masks")

    def __init__(
        self,
        pc: np.ndarray,
        op: np.ndarray,
        dst: np.ndarray,
        src1: np.ndarray,
        src2: np.ndarray,
        addr: np.ndarray,
        taken: np.ndarray,
    ) -> None:
        self.pc = pc
        self.op = op
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.addr = addr
        self.taken = taken
        self._masks: Dict[str, np.ndarray] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_instructions(
        cls, instructions: Sequence[Instruction]
    ) -> "TraceColumns":
        """Build columns from an ``Instruction`` sequence (one pass/field)."""
        n = len(instructions)
        from operator import attrgetter

        def column(name: str, dtype) -> np.ndarray:
            return np.fromiter(
                map(attrgetter(name), instructions), dtype, count=n
            )

        return cls(
            pc=column("pc", np.int64),
            op=column("op", np.int16),
            dst=column("dst", np.int32),
            src1=column("src1", np.int32),
            src2=column("src2", np.int32),
            addr=column("addr", np.int64),
            taken=column("taken", np.bool_),
        )

    @classmethod
    def ensure(cls, trace) -> "TraceColumns":
        """The columns of ``trace`` -- cached when it is a ``Trace``.

        Accepts a :class:`~repro.workloads.trace.Trace` (uses its cached
        columns), a ``TraceColumns`` (returned as-is), or any
        ``Instruction`` sequence (columns built on the fly).
        """
        if isinstance(trace, cls):
            return trace
        columns = getattr(trace, "columns", None)
        if callable(columns):
            return columns()
        return cls.from_instructions(trace)

    # -- basic protocol -------------------------------------------------

    def __len__(self) -> int:
        return int(self.pc.shape[0])

    def __getitem__(self, index: slice) -> "TraceColumns":
        if not isinstance(index, slice):
            raise TypeError("TraceColumns supports slice indexing only")
        view = TraceColumns(
            pc=self.pc[index],
            op=self.op[index],
            dst=self.dst[index],
            src1=self.src1[index],
            src2=self.src2[index],
            addr=self.addr[index],
            taken=self.taken[index],
        )
        start, stop, step = index.indices(len(self))
        if step == 1:
            for name, mask in self._masks.items():
                view._masks[name] = mask[index]
        return view

    def __repr__(self) -> str:
        return f"TraceColumns(n={len(self)})"

    # -- derived masks --------------------------------------------------

    def _mask(self, name: str, table: np.ndarray) -> np.ndarray:
        mask = self._masks.get(name)
        if mask is None:
            mask = table[self.op]
            self._masks[name] = mask
        return mask

    @property
    def is_load(self) -> np.ndarray:
        """Boolean mask of load (or load-op) instructions."""
        return self._mask("is_load", _LOAD_TABLE)

    @property
    def is_store(self) -> np.ndarray:
        """Boolean mask of store (or op-store) instructions."""
        return self._mask("is_store", _STORE_TABLE)

    @property
    def is_branch(self) -> np.ndarray:
        """Boolean mask of conditional branches."""
        return self._mask("is_branch", _BRANCH_TABLE)

    @property
    def is_mem(self) -> np.ndarray:
        """Boolean mask of memory instructions (loads | stores)."""
        mask = self._masks.get("is_mem")
        if mask is None:
            mask = self.is_load | self.is_store
            self._masks["is_mem"] = mask
        return mask

    # -- compatibility view ---------------------------------------------

    def instructions(self) -> List[Instruction]:
        """Materialize the stream back into ``Instruction`` objects."""
        return [
            Instruction(pc=pc, op=_OPS_BY_CODE[op], dst=dst,
                        src1=src1, src2=src2, addr=addr, taken=taken)
            for pc, op, dst, src1, src2, addr, taken in zip(
                self.pc.tolist(), self.op.tolist(), self.dst.tolist(),
                self.src1.tolist(), self.src2.tolist(),
                self.addr.tolist(), self.taken.tolist(),
            )
        ]

    # -- pickling (masks are derived; never shipped) --------------------

    def __getstate__(self):
        return (self.pc, self.op, self.dst, self.src1, self.src2,
                self.addr, self.taken)

    def __setstate__(self, state) -> None:
        (self.pc, self.op, self.dst, self.src1, self.src2,
         self.addr, self.taken) = state
        self._masks = {}


def previous_occurrence(ids: np.ndarray) -> np.ndarray:
    """``prev[i]`` = largest ``j < i`` with ``ids[j] == ids[i]``, else -1.

    This is the vectorized form of the per-line last-access dictionary
    every reuse-distance pass maintains: one stable argsort groups equal
    ids together while preserving stream order inside each group, so the
    predecessor of each occurrence is simply its left neighbour within
    the group.
    """
    n = int(ids.shape[0])
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    same = sorted_ids[1:] == sorted_ids[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def count_histogram(values: np.ndarray) -> Dict[int, int]:
    """``{value: count}`` over an integer array, as Python ints.

    Keys are inserted in first-encounter order -- the order a scalar
    ``hist[v] = hist.get(v, 0) + 1`` loop would produce -- so the
    serialized (non-canonical) JSON of a columnar-built profile is
    byte-identical to the scalar reference's, not merely dict-equal.
    """
    if values.size == 0:
        return {}
    unique, first_index, counts = np.unique(
        values, return_index=True, return_counts=True
    )
    order = np.argsort(first_index, kind="stable")
    return dict(zip(unique[order].tolist(), counts[order].tolist()))


def bernoulli_draws(rng, count: int) -> np.ndarray:
    """``count`` uniform draws from a ``random.Random``, as an array.

    The draws come from the *Python* generator (one ``rng.random()``
    call per element, in order), so a vectorized sampling decision
    ``draws < rate`` consumes exactly the same underlying Mersenne
    Twister sequence as the scalar loop it replaces -- bitwise, and
    leaving ``rng`` in the identical end state.
    """
    return np.fromiter(
        (rng.random() for _ in range(count)), np.float64, count=count
    )
