#!/usr/bin/env python3
"""Docs lint: every public API in the checked packages must be documented.

Historically a standalone AST walker; now a compatibility shim over the
``docstrings`` rule of the static-analysis package
(:mod:`repro.analysis`), which owns the logic and the authoritative
target list (:data:`repro.analysis.DOCSTRING_TARGETS`).  This entry
point, its default targets, and the CI step name all report that same
list, so they can never drift apart again.  Run locally with::

    python tools/lint_docs.py

or, equivalently, through the full front door::

    python tools/lint.py         # all rules, baseline applied
    PYTHONPATH=src python -m repro.cli lint --rules docstrings

Pass paths to check packages outside the guaranteed set.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import DOCSTRING_TARGETS, LintError, run_lint

#: Kept for backwards compatibility; the rule's list is authoritative.
DEFAULT_TARGETS = list(DOCSTRING_TARGETS)


def check_file(path: Path) -> list:
    """Lint one source file; returns a list of problem strings."""
    report = run_lint(
        [path], root=ROOT, rules=["docstrings"],
        options={"docstring_targets": ["*"]},
    )
    return [finding.message for finding in report.findings]


def main(argv) -> int:
    """Run the docstrings rule over the targets; 0 clean, 1 problems."""
    targets = argv[1:] or DEFAULT_TARGETS
    options = {} if argv[1:] else None
    if argv[1:]:
        # Explicit paths are linted unconditionally, like the old
        # standalone checker did.
        options = {"docstring_targets": ["*"]}
    try:
        report = run_lint(targets, root=ROOT, rules=["docstrings"],
                          options=options)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for finding in report.findings:
        print(finding.message)
    if report.findings:
        print(f"\n{len(report.findings)} documentation problem(s)")
        return 1
    print(f"docs lint OK ({len(report.files)} files; targets: "
          + ", ".join(DEFAULT_TARGETS) + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
