#!/usr/bin/env python3
"""Docs lint: every public API in the checked packages must be documented.

Walks the AST of the checked source files and fails (exit 1) when a
module, public class, or public function/method is missing a docstring.
Used by CI next to the test suite; run locally with::

    python tools/lint_docs.py

Checked by default: ``src/repro/explore/``, ``src/repro/api/`` and
``src/repro/core/model.py`` (the packages the documentation pass
guarantees); pass paths to check others.
"""

import ast
import sys
from pathlib import Path

DEFAULT_TARGETS = [
    "src/repro/explore",
    "src/repro/api",
    "src/repro/obs",
    "src/repro/core/model.py",
]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_node(node, qualname, problems):
    for child in node.body if hasattr(node, "body") else []:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            if not _is_public(child.name):
                continue
            child_name = f"{qualname}.{child.name}"
            if ast.get_docstring(child) is None:
                # Properties wrapping one-line returns still need docs;
                # no exemptions keeps the rule easy to reason about.
                problems.append(f"missing docstring: {child_name}")
            if isinstance(child, ast.ClassDef):
                _check_node(child, child_name, problems)


def check_file(path: Path) -> list:
    """Lint one source file; returns a list of problem strings."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"missing module docstring: {path}")
    _check_node(tree, str(path), problems)
    return problems


def main(argv) -> int:
    targets = argv[1:] or DEFAULT_TARGETS
    root = Path(__file__).resolve().parent.parent
    files = []
    for target in targets:
        path = root / target
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)

    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} documentation problem(s)")
        return 1
    print(f"docs lint OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
