#!/usr/bin/env python3
"""CI entry point for the determinism & contract static analysis.

A thin wrapper over :func:`repro.analysis.run_lint` that pins the CI
policy: lint ``src/repro`` against ``tools/lint_baseline.toml``, write
the machine-readable report artifact, and (with
``--require-empty-baseline``) fail if the baseline file contains any
entry at all -- the gate that keeps accepted exceptions at zero.

Run locally from the repository root::

    python tools/lint.py
    python tools/lint.py --json lint-report.json
    python tools/lint.py src/repro/api --no-baseline

Exit codes: 0 clean, 1 findings (or a non-empty baseline under
``--require-empty-baseline``), 2 usage/configuration errors.
"""

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import Baseline, BaselineError, LintError, run_lint


DEFAULT_BASELINE = ROOT / "tools" / "lint_baseline.toml"


def main(argv=None) -> int:
    """Parse arguments, run the lint pass, and report."""
    parser = argparse.ArgumentParser(
        description="determinism & contract static analysis (CI policy)")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        default=None,
                        help="files/directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        metavar="FILE.toml",
                        help="baseline file (default: "
                             "tools/lint_baseline.toml)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--require-empty-baseline", action="store_true",
                        help="fail if the baseline contains any entry "
                             "(the CI gate)")
    parser.add_argument("--json", default=None, metavar="OUT.json",
                        help="write the machine-readable report "
                             "artifact")
    args = parser.parse_args(argv)

    try:
        baseline = (Baseline() if args.no_baseline
                    else Baseline.load(args.baseline))
        report = run_lint(
            args.paths or ["src/repro"],
            root=ROOT,
            baseline=baseline,
        )
    except (LintError, BaselineError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_json_dict(), handle, indent=2)
            handle.write("\n")
        print(f"report -> {args.json}")
    print("\n".join(report.render_lines()))

    status = 0 if report.ok else 1
    if args.require_empty_baseline and len(baseline):
        print(f"error: --require-empty-baseline, but "
              f"{args.baseline} carries {len(baseline)} entr"
              f"{'y' if len(baseline) == 1 else 'ies'}",
              file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    sys.exit(main())
