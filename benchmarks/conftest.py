"""Shared infrastructure for the experiment benchmarks.

Each benchmark file regenerates one table or figure from the paper
(see DESIGN.md section 3 and EXPERIMENTS.md).  Traces, profiles and
simulation results are memoized per session so experiments sharing
inputs do not recompute them.  Every experiment also writes its rows to
``benchmarks/results/`` so the artifacts survive pytest's capture.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.core import AnalyticalModel, nehalem
from repro.core.machine import MachineConfig
from repro.profiler import SamplingConfig, profile_application
from repro.simulator import SimulationResult, simulate
from repro.workloads import Trace, generate_trace, make_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmark-scale knobs (small enough for laptop runs, large enough for
#: the qualitative shapes).
TRACE_LENGTH = 30_000
SHORT_TRACE_LENGTH = 10_000
SAMPLING = SamplingConfig(micro_trace_length=1000, window_length=5000)

_traces: Dict[Tuple[str, int], Trace] = {}
_profiles: Dict[Tuple[str, int], object] = {}
_simulations: Dict[Tuple[str, int, str], SimulationResult] = {}


def get_trace(name: str, length: int = TRACE_LENGTH) -> Trace:
    key = (name, length)
    if key not in _traces:
        _traces[key] = generate_trace(
            make_workload(name), max_instructions=length
        )
    return _traces[key]


def get_profile(name: str, length: int = TRACE_LENGTH):
    key = (name, length)
    if key not in _profiles:
        _profiles[key] = profile_application(get_trace(name, length),
                                             SAMPLING)
    return _profiles[key]


def get_simulation(
    name: str,
    config: MachineConfig = None,
    length: int = TRACE_LENGTH,
) -> SimulationResult:
    config = config or nehalem()
    key = (name, length, config.name)
    if key not in _simulations:
        _simulations[key] = simulate(get_trace(name, length), config)
    return _simulations[key]


def write_table(experiment: str, lines: List[str]) -> None:
    """Print an experiment's rows and persist them under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print()
    print(text)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w") as f:
        f.write(text + "\n")


#: Small design space shared by the DSE/Pareto experiments: 3 axes x 3
#: values = 27 cores (a slice of the paper's 243-core Table 6.3 space,
#: sized so the simulation ground truth stays laptop-friendly).
SMALL_SPACE_AXES = {
    "dispatch_width": (2, 4, 6),
    "rob_size": (64, 128, 256),
    "llc_mb": (2, 4, 8),
}
SPACE_WORKLOADS = ["gcc", "libquantum", "gamess"]

_space_data = {}


def get_space_data():
    """(workload -> [(config, sim, model_result)]) over the small space."""
    if _space_data:
        return _space_data
    from repro.core.machine import design_space

    configs = design_space(SMALL_SPACE_AXES)
    model = AnalyticalModel()
    for name in SPACE_WORKLOADS:
        trace = get_trace(name, SHORT_TRACE_LENGTH)
        profile = get_profile(name, SHORT_TRACE_LENGTH)
        rows = []
        for config in configs:
            sim = get_simulation(name, config, SHORT_TRACE_LENGTH)
            rows.append((config, sim, model.predict(profile, config)))
        _space_data[name] = rows
    return _space_data


@pytest.fixture
def model():
    return AnalyticalModel()


@pytest.fixture
def reference():
    return nehalem()
