"""E07 -- Fig 4.3: execution time with and without MLP modeling.

Paper shape: assuming serialized misses (MLP = 1) inflates predicted
execution time by ~25% on average (max ~96%); modeling MLP removes most
of that for memory-intensive benchmarks.
"""

from conftest import get_profile, get_simulation, write_table

from repro.core import AnalyticalModel, nehalem

WORKLOADS = ["libquantum", "milc", "lbm", "bwaves", "gcc", "mcf",
             "omnetpp", "leslie3d", "zeusmp", "gamess"]


def run_experiment():
    config = nehalem()
    with_mlp = AnalyticalModel(mlp_model="stride")
    without_mlp = AnalyticalModel(mlp_model="none")
    rows = {}
    for name in WORKLOADS:
        profile = get_profile(name)
        simulated = get_simulation(name).cycles
        rows[name] = (
            simulated,
            with_mlp.predict_performance(profile, config).cycles,
            without_mlp.predict_performance(profile, config).cycles,
        )
    return rows


def test_fig4_3_mlp_impact(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E07 / Fig 4.3 -- normalized execution time, with/without MLP",
             f"{'benchmark':<12s} {'model/sim':>10s} {'noMLP/sim':>10s}"]
    with_errors = []
    without_errors = []
    for name, (sim, with_cycles, without_cycles) in rows.items():
        lines.append(
            f"{name:<12s} {with_cycles / sim:10.2f} "
            f"{without_cycles / sim:10.2f}"
        )
        with_errors.append(abs(with_cycles - sim) / sim)
        without_errors.append(abs(without_cycles - sim) / sim)
    mean_with = sum(with_errors) / len(with_errors)
    mean_without = sum(without_errors) / len(without_errors)
    lines.append(f"mean error with MLP model:    {mean_with:.1%}")
    lines.append(f"mean error without MLP model: {mean_without:.1%}")
    write_table("E07_fig4_3", lines)

    # Shape: ignoring MLP overestimates execution time and is clearly
    # less accurate than modeling it (the paper's 24.6% vs modeled).
    assert mean_without > mean_with
    assert mean_without > 0.15
    for name, (sim, with_cycles, without_cycles) in rows.items():
        assert without_cycles >= with_cycles - 1e-6, name
