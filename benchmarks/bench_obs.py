#!/usr/bin/env python3
"""Benchmark: telemetry overhead -- disabled must be (nearly) free.

Acceptance check for the observability layer (``repro.obs``) on the
sweep hot path:

* with telemetry **disabled** (the default), a full
  :class:`~repro.explore.engine.SweepEngine` sweep must cost at most
  **2% more** than the pre-instrumentation baseline -- the direct
  ``predict_batch`` chunk loop the engine ran before spans/counters
  existed (best of N for both sides);
* the instrumented engine's DesignPoint stream must be **bitwise
  identical** to the baseline loop's;
* the fully **enabled** mode (tracer + metrics active) is measured and
  reported, but not gated -- enabling observation is allowed to cost.

Results land in ``benchmarks/results/E35_obs.txt`` and the
machine-readable perf-trajectory record in ``BENCH_obs.json`` at the
repository root (all ``bench_*`` scripts put their ``BENCH_*.json``
there).

Run:  PYTHONPATH=src python benchmarks/bench_obs.py
      PYTHONPATH=src python benchmarks/bench_obs.py --repeats 7
"""

import argparse
import gc
import json
import os
import platform
import sys
import time

from repro import obs
from repro.core import AnalyticalModel, ModelCache, design_space
from repro.explore.dse import DesignPoint
from repro.explore.engine import SweepEngine
from repro.profiler import SamplingConfig, profile_application
from repro.workloads import generate_trace, make_workload

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
WORKLOAD = "gcc"
INSTRUCTIONS = 20_000
MICRO_TRACE = 1_000
WINDOW = 4_000
BATCH_SIZE = 64
MAX_DISABLED_OVERHEAD = 0.02

#: Sweep grid: 2*4*3*3*4 = 288 configurations -- large enough that the
#: per-batch span/counter call sites are exercised realistically.
GRID_AXES = {
    "dispatch_width": (2, 4),
    "rob_size": (32, 64, 128, 256),
    "l1d_kb": (16, 32, 64),
    "llc_mb": (1, 2, 4),
    "frequency_ghz": (1.6, 2.0, 2.66, 3.4),
}


def baseline_sweep(model, profile, configs):
    """The pre-instrumentation serial loop: chunked ``predict_batch``.

    Mirrors ``SweepEngine._iter_serial`` exactly -- same chunking, same
    DesignPoint construction, same per-run ModelCache -- minus every
    telemetry call site.  This is the floor the instrumented engine is
    gated against.
    """
    chunk = BATCH_SIZE
    points = []
    for start in range(0, len(configs), chunk):
        stop = min(start + chunk, len(configs))
        results = model.predict_batch(profile, configs[start:stop])
        for offset, result in enumerate(results):
            points.append(DesignPoint(
                workload=profile.name,
                config=configs[start + offset],
                result=result,
            ))
    return points


def engine_sweep(profile, configs):
    """One full engine sweep with a fresh per-run model + cache."""
    engine = SweepEngine(model=AnalyticalModel(), workers=1,
                        batch_size=BATCH_SIZE)
    return list(engine.iter_sweep([profile], configs))


def points_identical(a, b) -> bool:
    """Bitwise comparison of two DesignPoint streams."""
    if len(a) != len(b):
        return False
    for pa, pb in zip(a, b):
        if pa.workload != pb.workload or pa.config != pb.config:
            return False
        if (pa.result.performance != pb.result.performance
                or list(pa.result.performance.stack)
                != list(pb.result.performance.stack)):
            return False
        if (pa.result.power != pb.result.power
                or (pa.result.energy_joules, pa.result.edp,
                    pa.result.ed2p)
                != (pb.result.energy_joules, pb.result.edp,
                    pb.result.ed2p)):
            return False
    return True


def best_of_interleaved(repeats, funcs):
    """Best (minimum) wall time per function over interleaved rounds.

    Each round runs every function once, in order, so cache/allocator
    warm-up and machine noise spread evenly across the contestants
    instead of favouring whichever mode happens to run last.  Returns
    ``(best_times, last_values)``.  One untimed warm-up round runs
    first.
    """
    for func in funcs:
        func()
    best = [float("inf")] * len(funcs)
    values = [None] * len(funcs)
    for _ in range(repeats):
        for index, func in enumerate(funcs):
            gc.collect()
            t0 = time.perf_counter()
            values[index] = func()
            best[index] = min(best[index],
                              time.perf_counter() - t0)
    return best, values


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per mode (best-of)")
    parser.add_argument("--instructions", type=int,
                        default=INSTRUCTIONS)
    args = parser.parse_args()

    trace = generate_trace(make_workload(WORKLOAD),
                           max_instructions=args.instructions)
    profile = profile_application(
        trace, SamplingConfig(MICRO_TRACE, WINDOW)
    )
    # Warm the StatStack models once: profile preparation is identical
    # work on both sides and not what this benchmark measures.
    profile.statstack()
    profile.instruction_statstack()
    configs = design_space(GRID_AXES)
    n_batches = -(-len(configs) // BATCH_SIZE)

    def run_baseline():
        model = AnalyticalModel()
        model.cache = ModelCache()
        return baseline_sweep(model, profile, configs)

    def run_disabled():
        return engine_sweep(profile, configs)

    def run_enabled():
        telemetry = obs.Telemetry(trace=True, metrics=True)
        with obs.activate(telemetry):
            points = engine_sweep(profile, configs)
        return points

    times, values = best_of_interleaved(
        args.repeats, [run_baseline, run_disabled, run_enabled]
    )
    t_baseline, t_disabled, t_enabled = times
    baseline_points, disabled_points, enabled_points = values

    identical = (points_identical(baseline_points, disabled_points)
                 and points_identical(baseline_points, enabled_points))
    overhead_disabled = t_disabled / t_baseline - 1.0
    overhead_enabled = t_enabled / t_baseline - 1.0

    lines = [
        "E35: telemetry overhead on the sweep hot path",
        f"grid: 1 workload x {len(configs)} configs "
        f"({n_batches} batches of {BATCH_SIZE}), "
        f"best of {args.repeats}",
        f"baseline loop (no obs)   : {t_baseline * 1e3:8.1f} ms",
        f"engine, telemetry off    : {t_disabled * 1e3:8.1f} ms  "
        f"({overhead_disabled * 100:+.2f}%)",
        f"engine, telemetry on     : {t_enabled * 1e3:8.1f} ms  "
        f"({overhead_enabled * 100:+.2f}%, informational)",
        f"disabled-overhead gate   : "
        f"{MAX_DISABLED_OVERHEAD * 100:.0f}%",
        f"bitwise identical points : {'yes' if identical else 'NO'}",
    ]
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(text)
    with open(os.path.join(RESULTS_DIR, "E35_obs.txt"), "w") as f:
        f.write(text + "\n")

    record = {
        "experiment": "E35_obs",
        "workload": WORKLOAD,
        "instructions": args.instructions,
        "n_configs": len(configs),
        "batch_size": BATCH_SIZE,
        "repeats": args.repeats,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "baseline_seconds": round(t_baseline, 6),
        "disabled_seconds": round(t_disabled, 6),
        "enabled_seconds": round(t_enabled, 6),
        "disabled_overhead": round(overhead_disabled, 6),
        "enabled_overhead": round(overhead_enabled, 6),
        "bitwise_identical": identical,
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
    }
    with open(os.path.join(ROOT, "BENCH_obs.json"), "w") as f:
        json.dump(record, f, indent=2)

    if not identical:
        print("FAIL: instrumented engine diverged from the baseline",
              file=sys.stderr)
        return 1
    if overhead_disabled > MAX_DISABLED_OVERHEAD:
        print(f"FAIL: disabled-mode overhead "
              f"{overhead_disabled * 100:.2f}% > "
              f"{MAX_DISABLED_OVERHEAD * 100:.0f}%", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
