#!/usr/bin/env python3
"""Benchmark: columnar profiler — vectorized vs scalar reference.

Acceptance check for the columnar (structure-of-arrays) profiling
backend on a >= 200k-instruction trace:

* ``profile_application`` (columnar backend, including the one-time
  column build on a cold trace) must be at least **5x faster** than the
  retained scalar reference backend, aggregated over sample rates 1.0
  and 0.1;
* every statistic must be **bitwise identical** between the backends at
  both sample rates: the global and instruction-stream
  ``ReuseProfile``s, the ``ColdMissProfile``, every micro-trace
  ``MicroTraceMemoryProfile``, and the full profile's content
  fingerprint (the ``ProfileStore`` cache key), so a columnar-profiled
  workload hits the same store entry as a scalar-profiled one.

Results land in ``benchmarks/results/E33_profiler.txt`` and the
machine-readable perf-trajectory record in ``BENCH_profiler.json`` at
the repository root (all ``bench_*`` scripts put their
``BENCH_*.json`` there).

Run:  PYTHONPATH=src python benchmarks/bench_profiler.py
      PYTHONPATH=src python benchmarks/bench_profiler.py --instructions 400000
"""

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.profiler import SamplingConfig, profile_application
from repro.profiler.serialization import profile_fingerprint
from repro.workloads import generate_trace, make_workload

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
WORKLOAD = "gcc"
INSTRUCTIONS = 200_000
MICRO_TRACE = 1_000
WINDOW = 10_000
SAMPLE_RATES = (1.0, 0.1)
REQUIRED_SPEEDUP = 5.0


def fresh_trace(instructions: int):
    """A new trace object (cold column cache) of the benchmark workload."""
    return generate_trace(make_workload(WORKLOAD),
                          max_instructions=instructions)


def profiles_identical(scalar, columnar) -> bool:
    """Bitwise comparison of the per-component acceptance surface."""
    if scalar.reuse != columnar.reuse:
        return False
    if scalar.instruction_reuse != columnar.instruction_reuse:
        return False
    if scalar.cold != columnar.cold:
        return False
    if len(scalar.micro_traces) != len(columnar.micro_traces):
        return False
    for left, right in zip(scalar.micro_traces, columnar.micro_traces):
        if left.memory != right.memory:
            return False
        if (left.load_reuse, left.store_reuse, left.cold_loads,
                left.cold_stores, left.load_reuse_by_pc, left.cold_by_pc) != (
                right.load_reuse, right.store_reuse, right.cold_loads,
                right.cold_stores, right.load_reuse_by_pc,
                right.cold_by_pc):
            return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=INSTRUCTIONS,
                        help="trace length (>= 200000 for the gate)")
    args = parser.parse_args()
    assert args.instructions >= 200_000, "trace too short for the gate"

    lines = []
    runs = []
    scalar_total = 0.0
    columnar_total = 0.0
    identical = True

    scalar_trace = fresh_trace(args.instructions)
    columnar_trace = fresh_trace(args.instructions)  # cold columns
    lines.append(
        f"E33: columnar vs scalar profiler, {WORKLOAD} x "
        f"{args.instructions} instructions "
        f"(micro-trace {MICRO_TRACE} / window {WINDOW})"
    )
    lines.append(
        f"{'rate':>6s} {'scalar_s':>10s} {'columnar_s':>11s} "
        f"{'speedup':>8s} {'bitwise':>8s}"
    )

    for rate in SAMPLE_RATES:
        sampling = SamplingConfig(MICRO_TRACE, WINDOW,
                                  reuse_sample_rate=rate, reuse_seed=0)
        t0 = time.perf_counter()
        scalar = profile_application(scalar_trace, sampling,
                                     backend="scalar")
        t_scalar = time.perf_counter() - t0
        t0 = time.perf_counter()
        columnar = profile_application(columnar_trace, sampling)
        t_columnar = time.perf_counter() - t0

        same = (profiles_identical(scalar, columnar)
                and profile_fingerprint(scalar)
                == profile_fingerprint(columnar))
        identical = identical and same
        scalar_total += t_scalar
        columnar_total += t_columnar
        runs.append({
            "sample_rate": rate,
            "scalar_seconds": round(t_scalar, 6),
            "columnar_seconds": round(t_columnar, 6),
            "speedup": round(t_scalar / t_columnar, 3),
            "bitwise_identical": same,
            "fingerprint": profile_fingerprint(columnar),
            "micro_traces": len(columnar.micro_traces),
        })
        lines.append(
            f"{rate:>6.2f} {t_scalar:>10.3f} {t_columnar:>11.3f} "
            f"{t_scalar / t_columnar:>7.2f}x "
            f"{'yes' if same else 'NO':>8s}"
        )

    speedup = scalar_total / columnar_total
    lines.append(
        f"aggregate: scalar {scalar_total:.3f} s, columnar "
        f"{columnar_total:.3f} s (cold column build included) -> "
        f"{speedup:.2f}x (gate >= {REQUIRED_SPEEDUP:.0f}x)"
    )
    lines.append(
        f"bitwise identical profiles + store keys: "
        f"{'yes' if identical else 'NO'}"
    )

    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(text)
    with open(os.path.join(RESULTS_DIR, "E33_profiler.txt"), "w") as f:
        f.write(text + "\n")

    record = {
        "experiment": "E33_profiler",
        "workload": WORKLOAD,
        "instructions": args.instructions,
        "sampling": {"micro_trace_length": MICRO_TRACE,
                     "window_length": WINDOW},
        "required_speedup": REQUIRED_SPEEDUP,
        "aggregate_speedup": round(speedup, 3),
        "scalar_seconds": round(scalar_total, 6),
        "columnar_seconds": round(columnar_total, 6),
        "bitwise_identical": identical,
        "runs": runs,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
    }
    with open(os.path.join(ROOT, "BENCH_profiler.json"),
              "w") as f:
        json.dump(record, f, indent=2)

    if not identical:
        print("FAIL: backends diverged", file=sys.stderr)
        return 1
    if speedup < REQUIRED_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x < "
              f"{REQUIRED_SPEEDUP:.0f}x", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
