"""E15 -- Fig 6.1 + §6.2.1: CPI stacks and absolute accuracy on the
reference architecture.

Paper shape: the model's CPI (and the per-component decomposition) tracks
cycle-level simulation with ~7.6% average error on the reference core;
memory-bound benchmarks are DRAM-dominated on both sides, compute-bound
ones base-dominated.
"""

from conftest import get_profile, get_simulation, write_table

from repro.core import AnalyticalModel, nehalem
from repro.workloads import workload_names


def run_experiment():
    model = AnalyticalModel()
    config = nehalem()
    rows = {}
    for name in workload_names():
        sim = get_simulation(name)
        prediction = model.predict_performance(get_profile(name), config)
        rows[name] = (sim, prediction)
    return rows


def test_fig6_1_cpi_stacks(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E15 / Fig 6.1 -- CPI stacks, model vs simulator",
             f"{'benchmark':<14s} {'simCPI':>7s} {'modCPI':>7s} "
             f"{'err':>7s} | components (model: base/branch/ic/chain/dram)"]
    errors = []
    for name, (sim, pred) in sorted(rows.items()):
        error = (pred.cpi - sim.cpi) / sim.cpi
        errors.append(abs(error))
        stack = pred.cpi_stack()
        lines.append(
            f"{name:<14s} {sim.cpi:7.3f} {pred.cpi:7.3f} {error:+7.1%} | "
            f"{stack['base']:.2f}/{stack['branch']:.2f}/"
            f"{stack['icache']:.2f}/{stack['llc_chain']:.2f}/"
            f"{stack['dram']:.2f}"
        )
    mean_error = sum(errors) / len(errors)
    lines.append(f"mean |CPI error|: {mean_error:.1%}  "
                 f"(paper reference-core figure: 7.6%)")
    write_table("E15_fig6_1", lines)

    # Shape assertions: mean error in a usable band; stack decomposition
    # agrees qualitatively for the extreme workloads.
    assert mean_error < 0.25
    sim_mcf, pred_mcf = rows["mcf"]
    assert pred_mcf.cpi_stack()["dram"] / pred_mcf.cpi > 0.5
    assert sim_mcf.cpi_stack()["dram"] / sim_mcf.cpi > 0.5
    sim_gamess, pred_gamess = rows["gamess"]
    assert pred_gamess.cpi_stack()["base"] > (
        pred_gamess.cpi_stack()["branch"]
    )
