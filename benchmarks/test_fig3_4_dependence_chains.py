"""E02 -- Fig 3.4: AP / ABP / CP dependence chain lengths at ROB 128.

Paper shape: the three statistics differ per benchmark and in magnitude;
CP is on average ~2.9x the AP; ABP ranges from shorter than AP to longer.
"""

from conftest import SHORT_TRACE_LENGTH, get_trace, write_table

from repro.profiler.dependences import profile_dependence_chains
from repro.workloads import workload_names


def compute_chains():
    rows = {}
    for name in workload_names():
        trace = get_trace(name, SHORT_TRACE_LENGTH)
        chains = profile_dependence_chains(
            trace.instructions[:4000], grid=(64, 128, 192)
        )
        rows[name] = (
            chains.ap.at(128), chains.abp.at(128), chains.cp.at(128)
        )
    return rows


def test_fig3_4_dependence_chains(benchmark):
    rows = benchmark.pedantic(compute_chains, rounds=1, iterations=1)

    lines = ["E02 / Fig 3.4 -- dependence chains at ROB=128",
             f"{'benchmark':<14s} {'AP':>7s} {'ABP':>7s} {'CP':>7s}"]
    for name, (ap, abp, cp) in sorted(rows.items()):
        lines.append(f"{name:<14s} {ap:7.2f} {abp:7.2f} {cp:7.2f}")
    mean_ap = sum(r[0] for r in rows.values()) / len(rows)
    mean_cp = sum(r[2] for r in rows.values()) / len(rows)
    lines.append(f"mean CP / mean AP ratio: {mean_cp / mean_ap:.2f}")
    write_table("E02_fig3_4", lines)

    # Shape: CP >= AP everywhere; CP clearly longer on average; the suite
    # spans a range of chain depths (compute vs streaming kernels).
    for name, (ap, abp, cp) in rows.items():
        assert cp >= ap - 1e-9, name
    assert mean_cp / mean_ap > 1.5
    cps = [r[2] for r in rows.values()]
    assert max(cps) / max(min(cps), 0.1) > 2.0
