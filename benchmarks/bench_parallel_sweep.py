#!/usr/bin/env python3
"""Benchmark: SweepEngine vs the pre-engine serial sweep loop.

Acceptance check for the sweep engine: on a >= (4 workloads x 32
configs) grid with a warm profile cache, the engine must be at least 2x
faster wall-clock than the historical serial ``evaluate_design_space``
loop while producing bitwise-identical design points.

The baseline below is a verbatim transcription of the pre-engine
implementation (a nested ``model.predict`` loop with no caches); both
paths start from freshly deserialized profiles so neither benefits from
in-memory state built by the other.

The machine-readable perf-trajectory record lands in
``BENCH_parallel_sweep.json`` at the repository root (all ``bench_*``
scripts put their ``BENCH_*.json`` there).

Run:  PYTHONPATH=src python benchmarks/bench_parallel_sweep.py
      PYTHONPATH=src python benchmarks/bench_parallel_sweep.py --workers 4
"""

import argparse
import json
import os
import platform
import sys
import tempfile
import time

from repro.core.model import AnalyticalModel
from repro.core.machine import design_space
from repro.explore.engine import SweepEngine
from repro.profiler import SamplingConfig, profile_application
from repro.profiler.serialization import ProfileStore
from repro.workloads import generate_trace, make_workload

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
WORKLOADS = ["gcc", "gamess", "mcf", "libquantum"]
INSTRUCTIONS = 20_000
SAMPLING = SamplingConfig(1000, 5000)


def legacy_serial_sweep(profiles, configs):
    """The pre-engine evaluate_design_space, reproduced verbatim."""
    model = AnalyticalModel()
    results = {}
    for profile in profiles:
        points = []
        for config in configs:
            points.append(model.predict(profile, config))
        results[profile.name] = points
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="engine workers (default: cpu count)")
    parser.add_argument("--configs", type=int, default=32,
                        help="number of configurations (>= 32)")
    args = parser.parse_args()

    configs = design_space({
        "dispatch_width": (2, 4),
        "rob_size": (64, 128),
        "llc_mb": (2, 4, 8),
        "l1d_kb": (16, 32, 64),
    })[:args.configs]
    print(f"grid: {len(WORKLOADS)} workloads x {len(configs)} configs")

    with tempfile.TemporaryDirectory() as cache_dir:
        store = ProfileStore(cache_dir)

        # One-time profiling cost (the paper's point: paid once, amortized
        # over every sweep) -- not part of either timed region.
        keys = []
        for name in WORKLOADS:
            trace = generate_trace(make_workload(name),
                                   max_instructions=INSTRUCTIONS)
            profile = profile_application(trace, SAMPLING)
            keys.append(store.warm(profile))  # warms the on-disk cache

        # Baseline: fresh profiles, historical serial loop, no caches.
        baseline_profiles = [store.get(key) for key in keys]
        t0 = time.perf_counter()
        baseline = legacy_serial_sweep(baseline_profiles, configs)
        t_baseline = time.perf_counter() - t0

        # Engine: fresh profiles, warm on-disk profile cache, model cache,
        # worker pool.
        engine_profiles = [store.get(key) for key in keys]
        engine = SweepEngine(workers=args.workers, store=store)
        t0 = time.perf_counter()
        results = engine.sweep(engine_profiles, configs)
        t_engine = time.perf_counter() - t0

    mismatches = 0
    for name in baseline:
        for reference, point in zip(baseline[name], results[name]):
            if (reference.cpi != point.cpi
                    or reference.power_watts != point.power_watts
                    or reference.performance.stack
                    != point.result.performance.stack):
                mismatches += 1
    speedup = t_baseline / t_engine if t_engine > 0 else float("inf")

    workers = engine.effective_workers()
    print(f"legacy serial loop : {t_baseline * 1e3:8.1f} ms")
    print(f"sweep engine       : {t_engine * 1e3:8.1f} ms  "
          f"(workers={workers}, warm profile cache)")
    print(f"speedup            : {speedup:8.2f}x")
    print(f"bitwise identical  : {'yes' if mismatches == 0 else 'NO'}")

    record = {
        "experiment": "parallel_sweep",
        "workloads": WORKLOADS,
        "instructions": INSTRUCTIONS,
        "n_configs": len(configs),
        "workers": workers,
        "required_speedup": 2.0,
        "baseline_seconds": round(t_baseline, 6),
        "engine_seconds": round(t_engine, 6),
        "speedup": round(speedup, 3),
        "bitwise_identical": mismatches == 0,
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
    }
    with open(os.path.join(ROOT, "BENCH_parallel_sweep.json"),
              "w") as f:
        json.dump(record, f, indent=2)

    if mismatches:
        print("FAIL: engine results diverge from the serial baseline")
        return 1
    if speedup < 2.0:
        print("FAIL: speedup below the 2x acceptance threshold")
        return 1
    print("PASS: >= 2x speedup with bitwise-identical results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
