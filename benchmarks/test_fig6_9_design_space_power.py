"""E20 -- Fig 6.9/6.10: power accuracy across the design space.

Paper shape: 4.3% average power error over the 243-core space, with high
predicted-vs-simulated correlation.
"""

from conftest import get_space_data, write_table

import numpy as np

from repro.core.power import PowerModel


def run_experiment():
    data = get_space_data()
    results = {}
    for name, rows in data.items():
        points = []
        for config, sim, model_result in rows:
            backend = PowerModel(config)
            sim_watts = backend.evaluate(sim.activity).total
            points.append((sim_watts, model_result.power_watts))
        results[name] = points
    return results


def test_fig6_9_design_space_power(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E20 / Fig 6.9+6.10 -- design space power accuracy "
             "(27 cores x 3 workloads)"]
    all_errors = []
    for name, points in results.items():
        sims = np.array([s for s, _ in points])
        models = np.array([m for _, m in points])
        errors = np.abs(models - sims) / sims
        correlation = float(np.corrcoef(sims, models)[0, 1])
        all_errors.extend(errors.tolist())
        lines.append(
            f"{name:<12s} mean err {errors.mean():6.1%}  "
            f"max err {errors.max():6.1%}  corr {correlation:5.2f}"
        )
        assert correlation > 0.9, name
    mean_error = float(np.mean(all_errors))
    lines.append(f"OVERALL mean |power error|: {mean_error:.1%}  "
                 f"(paper design-space figure: 4.3%)")
    write_table("E20_fig6_9", lines)

    # Shape: power error across the space stays well under the
    # performance error (the paper's 4.3% vs 9.3% relationship).
    assert mean_error < 0.15
