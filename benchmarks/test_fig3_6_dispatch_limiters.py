"""E03 -- Fig 3.6: which factor limits the effective dispatch rate.

Paper shape: most benchmarks are limited by functional ports or units
(loads, divides); some by inter-instruction dependences (bwaves, mcf);
a few reach the physical dispatch width (gobmk, sjeng, ...).
"""

from collections import Counter

from conftest import get_profile, write_table

from repro.core import nehalem
from repro.core.dispatch import effective_dispatch_rate
from repro.workloads import workload_names


def compute_limits():
    config = nehalem()
    rows = {}
    for name in workload_names():
        profile = get_profile(name)
        limits = effective_dispatch_rate(
            profile.mix, profile.chains, config
        )
        rows[name] = limits
    return rows


def test_fig3_6_dispatch_limiters(benchmark):
    rows = benchmark.pedantic(compute_limits, rounds=1, iterations=1)

    lines = ["E03 / Fig 3.6 -- effective dispatch rate limiters",
             f"{'benchmark':<14s} {'D':>6s} {'deps':>6s} {'port':>6s} "
             f"{'unit':>6s}  binding"]
    counts = Counter()
    for name, limits in sorted(rows.items()):
        binding = limits.limiter()
        counts[binding] += 1
        lines.append(
            f"{name:<14s} {limits.dispatch_width:6.2f} "
            f"{limits.dependences:6.2f} {limits.functional_ports:6.2f} "
            f"{limits.functional_units:6.2f}  {binding}"
        )
    lines.append(f"binding-constraint histogram: {dict(counts)}")
    write_table("E03_fig3_6", lines)

    # Shape: the suite exercises more than one binding constraint, and
    # port/unit contention binds for a meaningful share (the paper's
    # dominant case).
    assert len(counts) >= 2
    contention = counts["functional_port"] + counts["functional_unit"]
    assert contention >= len(rows) * 0.3
