"""E10 -- Fig 4.9: the chained-LLC-hit penalty.

Paper shape: for phases with many dependent LLC hits (gcc's tail), the
model without the LLC-chaining component underestimates CPI; adding the
component recovers most of the gap (gcc: -12.3% -> -3.6% in the thesis).

We use a dedicated kernel whose loads pointer-chase inside a region that
fits the LLC but misses L2 -- the exact behaviour the component models.
"""

from conftest import SAMPLING, write_table

from repro.core import AnalyticalModel, nehalem
from repro.profiler import profile_application
from repro.simulator import simulate
from repro.workloads import generate_trace
from repro.workloads.generator import (
    AluSpec,
    BranchSpec,
    KernelSpec,
    LoadSpec,
    WorkloadSpec,
)
from repro.isa import MacroOp

MB = 1024 * 1024


def llc_chain_workload():
    """Dependent loads bouncing inside a 2 MB region (LLC hits, L2 misses)."""
    body = [
        LoadSpec(dst=1, pattern="chase", region=2 * MB, base=0x100000),
        AluSpec(op=MacroOp.INT_ALU, dst=8, srcs=(1,)),
        LoadSpec(dst=2, pattern="chase", region=2 * MB, base=0x300000),
        AluSpec(op=MacroOp.INT_ALU, dst=9, srcs=(2,)),
        AluSpec(op=MacroOp.INT_ALU, dst=10, srcs=()),
        BranchSpec(pattern="loop"),
    ]
    return WorkloadSpec("llc-chain", [KernelSpec("llc-chain", body)],
                        seed=99)


def run_experiment():
    trace = generate_trace(llc_chain_workload(), max_instructions=30_000)
    config = nehalem()
    # Warm the region into the LLC with one extra pass by simulating the
    # full trace; the second half is LLC-resident.
    sim = simulate(trace, config, window_instructions=5000)
    profile = profile_application(trace, SAMPLING)
    with_chaining = AnalyticalModel(enable_llc_chaining=True)
    without_chaining = AnalyticalModel(enable_llc_chaining=False)
    return (
        sim,
        with_chaining.predict_performance(profile, config),
        without_chaining.predict_performance(profile, config),
    )


def test_fig4_9_llc_chaining(benchmark):
    sim, with_chain, without_chain = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    error_with = abs(with_chain.cpi - sim.cpi) / sim.cpi
    error_without = abs(without_chain.cpi - sim.cpi) / sim.cpi
    lines = ["E10 / Fig 4.9 -- chained LLC hits",
             f"simulated CPI:             {sim.cpi:7.3f}",
             f"model CPI (with chain):    {with_chain.cpi:7.3f}  "
             f"err {100 * (with_chain.cpi - sim.cpi) / sim.cpi:+.1f}%",
             f"model CPI (no chain):      {without_chain.cpi:7.3f}  "
             f"err {100 * (without_chain.cpi - sim.cpi) / sim.cpi:+.1f}%",
             f"chain component (cycles):  "
             f"{with_chain.stack['llc_chain']:10.0f}",
             "",
             "CPI over time (simulated):"]
    for start, cpi in sim.window_cpi:
        lines.append(f"  {start:>7d}  {cpi:6.3f}")
    write_table("E10_fig4_9", lines)

    # Shape: the chaining component is active for this workload and the
    # model without it predicts fewer cycles.
    assert with_chain.stack["llc_chain"] > 0.0
    assert without_chain.cpi < with_chain.cpi
    assert error_with <= error_without + 0.02
