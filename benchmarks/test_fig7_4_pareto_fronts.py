"""E27 -- Fig 7.4/7.5: Pareto frontiers, model vs simulator.

Paper shape: the model's delay/power frontier overlays the simulated one
closely enough that picking from the predicted frontier is safe.
"""

from conftest import get_space_data, write_table

from repro.core.power import PowerModel
from repro.explore.pareto import pareto_front


def run_experiment():
    data = get_space_data()
    rows = {}
    for workload, points in data.items():
        true_points = []
        predicted_points = []
        names = []
        for config, sim, result in points:
            backend = PowerModel(config)
            sim_watts = backend.evaluate(sim.activity).total
            true_points.append((sim.seconds, sim_watts))
            predicted_points.append((result.seconds, result.power_watts))
            names.append(config.name)
        rows[workload] = (names, true_points, predicted_points)
    return rows


def test_fig7_4_pareto_fronts(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E27 / Fig 7.4 -- Pareto frontiers (delay vs power)"]
    for workload, (names, true_points, predicted_points) in rows.items():
        true_front = set(pareto_front(true_points))
        predicted_front = set(pareto_front(predicted_points))
        overlap = len(true_front & predicted_front)
        lines.append(f"-- {workload}: true front {len(true_front)} "
                     f"designs, predicted {len(predicted_front)}, "
                     f"overlap {overlap}")
        for index in sorted(predicted_front):
            marker = "*" if index in true_front else " "
            lines.append(
                f"   {marker} {names[index]:<28s} "
                f"model ({predicted_points[index][0]:.3e}s, "
                f"{predicted_points[index][1]:.2f}W)  "
                f"sim ({true_points[index][0]:.3e}s, "
                f"{true_points[index][1]:.2f}W)"
            )
        # Shape: the predicted front shares designs with the true front.
        assert overlap >= 1, workload
        assert len(predicted_front) <= len(true_points) * 0.6
    write_table("E27_fig7_4", lines)
