"""E19 -- Fig 6.7 + §6.3.1: power stacks and absolute power accuracy.

Paper shape: power predictions are tighter than performance (3.4% average
on the reference core) because static power and structure sizes dominate;
both sides feed the same McPAT-style backend, differing only in predicted
vs measured activity factors.
"""

from conftest import get_profile, get_simulation, write_table

from repro.core import AnalyticalModel, nehalem
from repro.core.power import PowerModel
from repro.workloads import workload_names


def run_experiment():
    model = AnalyticalModel()
    config = nehalem()
    backend = PowerModel(config)
    rows = {}
    for name in workload_names():
        sim = get_simulation(name)
        sim_power = backend.evaluate(sim.activity)
        predicted = model.predict(get_profile(name), config)
        rows[name] = (sim_power, predicted.power)
    return rows


def test_fig6_7_power_stacks(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E19 / Fig 6.7 -- power stacks, model vs simulator-fed "
             "backend",
             f"{'benchmark':<14s} {'simW':>7s} {'modW':>7s} {'err':>7s} "
             f"{'static%':>8s}"]
    errors = []
    for name, (sim_power, model_power) in sorted(rows.items()):
        error = (model_power.total - sim_power.total) / sim_power.total
        errors.append(abs(error))
        lines.append(
            f"{name:<14s} {sim_power.total:7.2f} {model_power.total:7.2f} "
            f"{error:+7.1%} {model_power.static_total / model_power.total:8.1%}"
        )
    mean_error = sum(errors) / len(errors)
    lines.append(f"mean |power error|: {mean_error:.1%}  "
                 f"(paper reference-core figure: 3.4%)")
    write_table("E19_fig6_7", lines)

    # Shape: power error clearly tighter than the performance error band.
    assert mean_error < 0.12
    for name, (sim_power, model_power) in rows.items():
        assert model_power.total > 0 and sim_power.total > 0
