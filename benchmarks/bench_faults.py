#!/usr/bin/env python3
"""Benchmark: supervision overhead -- fault-free must be (nearly) free.

Acceptance check for the fault-tolerance layer (``repro.faults`` plus
the supervised :class:`~repro.api.pool.WorkerPool`):

* with **no faults injected**, a parallel
  :class:`~repro.explore.engine.SweepEngine` sweep on a supervised pool
  must cost at most **2% more** than the same sweep on an unsupervised
  pool (the pre-supervision dispatch path; best of N for both sides);
* the supervised stream must be **bitwise identical** to the
  unsupervised one;
* recovery cost under an injected chaos spec (worker crashes plus task
  errors) is measured and reported, but not gated -- surviving faults
  is allowed to cost.

On platforms that cannot create worker processes the benchmark prints
a notice and exits 0: there is nothing to supervise.

Results land in ``benchmarks/results/E36_faults.txt`` and the
machine-readable perf-trajectory record in ``BENCH_faults.json`` at the
repository root (all ``bench_*`` scripts put their ``BENCH_*.json``
there).

Run:  PYTHONPATH=src python benchmarks/bench_faults.py
      PYTHONPATH=src python benchmarks/bench_faults.py --repeats 7
"""

import argparse
import gc
import json
import os
import platform
import sys
import time

from repro.api.pool import WorkerPool
from repro.core import design_space
from repro.explore.engine import SweepEngine
from repro.faults import RetryPolicy, inject
from repro.profiler import SamplingConfig, profile_application
from repro.workloads import generate_trace, make_workload

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
WORKLOAD = "gcc"
INSTRUCTIONS = 20_000
MICRO_TRACE = 1_000
WINDOW = 4_000
BATCH_SIZE = 16
WORKERS = 2
MAX_FAULT_FREE_OVERHEAD = 0.02
CHAOS_SPEC = "crash:0.15,task_error:0.25"
CHAOS_SEED = 1337

#: Sweep grid: 2*4*3*3*4 = 288 configurations over a persistent pool
#: -- enough batches (18) that the supervision window, resubmission
#: accounting and result ordering are all exercised and per-stage
#: fixed costs amortize.
GRID_AXES = {
    "dispatch_width": (2, 4),
    "rob_size": (32, 64, 128, 256),
    "l1d_kb": (16, 32, 64),
    "llc_mb": (1, 2, 4),
    "frequency_ghz": (1.6, 2.0, 2.66, 3.4),
}


def mp_available() -> bool:
    """Whether this platform can create worker processes."""
    import multiprocessing

    try:
        with multiprocessing.Pool(1):
            pass
        return True
    except (ImportError, OSError, ValueError):
        return False


def engine_sweep(profile, configs, pool):
    """One full parallel engine sweep on an externally-owned pool."""
    engine = SweepEngine(workers=WORKERS, batch_size=BATCH_SIZE,
                         pool=pool)
    return list(engine.iter_sweep([profile], configs))


def points_identical(a, b) -> bool:
    """Bitwise comparison of two DesignPoint streams."""
    if len(a) != len(b):
        return False
    for pa, pb in zip(a, b):
        if pa.workload != pb.workload or pa.config != pb.config:
            return False
        if (pa.result.performance != pb.result.performance
                or list(pa.result.performance.stack)
                != list(pb.result.performance.stack)):
            return False
        if (pa.result.power != pb.result.power
                or (pa.result.energy_joules, pa.result.edp,
                    pa.result.ed2p)
                != (pb.result.energy_joules, pb.result.edp,
                    pb.result.ed2p)):
            return False
    return True


def best_of_interleaved(repeats, funcs):
    """Best (minimum) wall time per function over interleaved rounds.

    Each round runs every function once, in order, so pool warm-up and
    machine noise spread evenly across the contestants instead of
    favouring whichever mode happens to run last.  Returns
    ``(best_times, last_values)``.  One untimed warm-up round runs
    first.
    """
    for func in funcs:
        func()
    best = [float("inf")] * len(funcs)
    values = [None] * len(funcs)
    for _ in range(repeats):
        for index, func in enumerate(funcs):
            gc.collect()
            t0 = time.perf_counter()
            values[index] = func()
            best[index] = min(best[index],
                              time.perf_counter() - t0)
    return best, values


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per mode (best-of)")
    parser.add_argument("--instructions", type=int,
                        default=INSTRUCTIONS)
    args = parser.parse_args()

    if not mp_available():
        print("SKIP: platform cannot create worker processes; "
              "nothing to supervise")
        return 0

    trace = generate_trace(make_workload(WORKLOAD),
                           max_instructions=args.instructions)
    profile = profile_application(
        trace, SamplingConfig(MICRO_TRACE, WINDOW)
    )
    profile.statstack()
    profile.instruction_statstack()
    configs = design_space(GRID_AXES)
    n_batches = -(-len(configs) // BATCH_SIZE)

    retry = RetryPolicy(max_attempts=6, timeout=60,
                        backoff_base=0.001, backoff_max=0.01)
    plain = WorkerPool(WORKERS, supervised=False)
    supervised = WorkerPool(WORKERS, retry=retry)
    chaos_pool = WorkerPool(WORKERS, retry=retry, max_restarts=64)

    def run_plain():
        return engine_sweep(profile, configs, plain)

    def run_supervised():
        return engine_sweep(profile, configs, supervised)

    try:
        times, values = best_of_interleaved(
            args.repeats, [run_plain, run_supervised]
        )
        t_plain, t_supervised = times
        plain_points, supervised_points = values

        # Informational: one chaos round on a fresh pool. The injected
        # spec is seeded, so recovery work is reproducible.
        previous = inject.activate(
            inject.FaultPlan.parse(CHAOS_SPEC, seed=CHAOS_SEED))
        os.environ[inject.ENV_SPEC] = CHAOS_SPEC
        os.environ[inject.ENV_SEED] = str(CHAOS_SEED)
        try:
            t0 = time.perf_counter()
            chaos_points = engine_sweep(profile, configs, chaos_pool)
            t_chaos = time.perf_counter() - t0
        finally:
            del os.environ[inject.ENV_SPEC]
            del os.environ[inject.ENV_SEED]
            inject.activate(previous)
    finally:
        plain.close()
        supervised.close()
        chaos_pool.close()

    identical = points_identical(plain_points, supervised_points)
    chaos_identical = points_identical(plain_points, chaos_points)
    overhead = t_supervised / t_plain - 1.0

    lines = [
        "E36: supervision overhead on the parallel sweep path",
        f"grid: 1 workload x {len(configs)} configs "
        f"({n_batches} batches of {BATCH_SIZE}, {WORKERS} workers), "
        f"best of {args.repeats}",
        f"unsupervised pool        : {t_plain * 1e3:8.1f} ms",
        f"supervised, fault-free   : {t_supervised * 1e3:8.1f} ms  "
        f"({overhead * 100:+.2f}%)",
        f"supervised, chaos        : {t_chaos * 1e3:8.1f} ms  "
        f"(spec {CHAOS_SPEC!r}, informational)",
        f"chaos recovery           : "
        f"{chaos_pool.retries} retries, "
        f"{chaos_pool.worker_crashes} crashes, "
        f"{chaos_pool.restarts} restarts",
        f"fault-free gate          : "
        f"{MAX_FAULT_FREE_OVERHEAD * 100:.0f}%",
        f"bitwise identical points : "
        f"{'yes' if identical and chaos_identical else 'NO'}",
    ]
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(text)
    with open(os.path.join(RESULTS_DIR, "E36_faults.txt"), "w") as f:
        f.write(text + "\n")

    record = {
        "experiment": "E36_faults",
        "workload": WORKLOAD,
        "instructions": args.instructions,
        "n_configs": len(configs),
        "batch_size": BATCH_SIZE,
        "workers": WORKERS,
        "repeats": args.repeats,
        "max_fault_free_overhead": MAX_FAULT_FREE_OVERHEAD,
        "chaos_spec": CHAOS_SPEC,
        "chaos_seed": CHAOS_SEED,
        "plain_seconds": round(t_plain, 6),
        "supervised_seconds": round(t_supervised, 6),
        "chaos_seconds": round(t_chaos, 6),
        "fault_free_overhead": round(overhead, 6),
        "chaos_retries": chaos_pool.retries,
        "chaos_worker_crashes": chaos_pool.worker_crashes,
        "chaos_restarts": chaos_pool.restarts,
        "bitwise_identical": identical and chaos_identical,
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
    }
    with open(os.path.join(ROOT, "BENCH_faults.json"), "w") as f:
        json.dump(record, f, indent=2)

    if not (identical and chaos_identical):
        print("FAIL: supervised stream diverged from the "
              "unsupervised baseline", file=sys.stderr)
        return 1
    if overhead > MAX_FAULT_FREE_OVERHEAD:
        print(f"FAIL: fault-free supervision overhead "
              f"{overhead * 100:.2f}% > "
              f"{MAX_FAULT_FREE_OVERHEAD * 100:.0f}%", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
