"""E21 -- Fig 6.14: phase behaviour tracking (CPI over time).

Paper shape: the per-micro-trace evaluation tracks an application's CPI
phases (astar/bzip2/cactusADM plots); the model's high-CPI windows line
up with the simulator's memory phases.
"""

from conftest import SAMPLING, get_simulation, get_trace, write_table

from repro.core import AnalyticalModel, nehalem
from repro.profiler import profile_application

WINDOW = 5000


def run_experiment():
    name = "astar"  # explicitly phased workload (compute/memory rounds)
    trace = get_trace(name)
    sim = get_simulation(name)
    # Re-simulate with matching window granularity for the time series.
    from repro.simulator import simulate
    sim_series = simulate(trace, nehalem(),
                          window_instructions=WINDOW).window_cpi
    profile = profile_application(trace, SAMPLING)
    prediction = AnalyticalModel().predict_performance(profile, nehalem())
    model_series = [
        (window.start, window.cpi) for window in prediction.windows
    ]
    return sim_series, model_series


def test_fig6_14_phase_analysis(benchmark):
    sim_series, model_series = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    lines = ["E21 / Fig 6.14 -- phase tracking (astar), CPI over time",
             f"{'instr':>8s} {'sim CPI':>8s} {'model CPI':>10s}"]
    model_by_start = dict(model_series)
    paired = []
    for start, sim_cpi in sim_series:
        model_cpi = model_by_start.get(start)
        if model_cpi is not None:
            paired.append((start, sim_cpi, model_cpi))
            lines.append(f"{start:>8d} {sim_cpi:8.3f} {model_cpi:10.3f}")
    write_table("E21_fig6_14", lines)

    assert len(paired) >= 3
    # Shape: both series see distinct phases (max/min CPI ratio > 1.3)
    # and agree on which window is the hottest phase within one position.
    sim_values = [s for _, s, _ in paired]
    model_values = [m for _, _, m in paired]
    assert max(sim_values) / min(sim_values) > 1.3
    assert max(model_values) / min(model_values) > 1.3
    sim_peak = max(range(len(paired)), key=lambda i: sim_values[i])
    model_peak = max(range(len(paired)), key=lambda i: model_values[i])
    assert abs(sim_peak - model_peak) <= 1
