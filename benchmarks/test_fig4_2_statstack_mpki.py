"""E06 -- Fig 4.2: StatStack MPKI vs simulated MPKI, 3-level hierarchy.

Paper shape: for benchmarks with non-negligible MPKI the statistical
model tracks the simulated per-level MPKI closely (few-percent error for
the 32 KB / 256 KB / 8 MB hierarchy).
"""

from conftest import get_profile, get_simulation, get_trace, write_table

from repro.workloads import workload_names

LEVEL_BYTES = [32 * 1024, 256 * 1024, 8 * 1024 * 1024]


def run_experiment():
    rows = {}
    for name in workload_names():
        trace = get_trace(name)
        simulated = get_simulation(name).mpki
        profile = get_profile(name)
        statstack = profile.statstack()
        loads = profile.reuse.load_accesses
        stores = profile.reuse.store_accesses
        predicted = []
        for size in LEVEL_BYTES:
            misses = (
                statstack.miss_ratio(size, kind="load") * loads
                + statstack.miss_ratio(size, kind="store") * stores
            )
            predicted.append(1000.0 * misses / len(trace))
        rows[name] = (simulated, predicted)
    return rows


def test_fig4_2_statstack_mpki(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E06 / Fig 4.2 -- StatStack vs simulated MPKI "
             "(L1 32K / L2 256K / L3 8M)",
             f"{'benchmark':<14s} {'L1sim':>7s} {'L1ss':>7s} {'L2sim':>7s} "
             f"{'L2ss':>7s} {'L3sim':>7s} {'L3ss':>7s}"]
    errors = []
    for name, (sim, pred) in sorted(rows.items()):
        lines.append(
            f"{name:<14s} {sim[0]:7.1f} {pred[0]:7.1f} {sim[1]:7.1f} "
            f"{pred[1]:7.1f} {sim[2]:7.1f} {pred[2]:7.1f}"
        )
        for level in range(3):
            if sim[level] > 10.0:  # paper: score only meaningful MPKI
                errors.append(
                    abs(pred[level] - sim[level]) / sim[level]
                )
    mean_error = sum(errors) / len(errors) if errors else 0.0
    lines.append(
        f"mean relative error over levels with MPKI > 10: {mean_error:.1%}"
        f"  ({len(errors)} points)"
    )
    write_table("E06_fig4_2", lines)

    # Shape: the statistical model tracks simulation on the significant
    # points (paper reports 3.5-6.7% per level; we allow a wider band for
    # the set-associative-vs-fully-associative approximation).
    assert errors, "expected some benchmarks with MPKI > 10"
    assert mean_error < 0.25
