"""E17 -- Table 6.2: error introduced by each micro-architecture
independent input.

The paper replaces, one by one, the simulated inputs of the classic
interval model with statistical ones (entropy-based branch rates, the
MLP models) and reports the incremental error.  We mirror it by swapping
model components: oracle branch missrate (from the simulator) vs the
entropy model, and stride vs cold vs no MLP.
"""

from conftest import get_profile, get_simulation, write_table

from repro.core import AnalyticalModel, nehalem
from repro.frontend.entropy import EntropyMissRateModel

WORKLOADS = ["gcc", "mcf", "libquantum", "gamess", "bzip2", "milc",
             "omnetpp", "hmmer"]


def mean_error(model, config, oracle_branch=False):
    errors = []
    for name in WORKLOADS:
        sim = get_simulation(name)
        if oracle_branch and sim.branches:
            rate = sim.branch_mispredictions / sim.branches
            evaluator = AnalyticalModel(
                entropy_model=EntropyMissRateModel(
                    "oracle", slope=0.0, intercept=rate, history_bits=8
                ),
                mlp_model=model.interval.mlp_model,
            )
        else:
            evaluator = model
        prediction = evaluator.predict_performance(
            get_profile(name), config
        )
        errors.append(abs(prediction.cpi - sim.cpi) / sim.cpi)
    return sum(errors) / len(errors), max(errors)


def run_experiment():
    config = nehalem()
    variants = {}
    variants["oracle branch + stride MLP"] = mean_error(
        AnalyticalModel(mlp_model="stride"), config, oracle_branch=True
    )
    variants["entropy branch + stride MLP"] = mean_error(
        AnalyticalModel(mlp_model="stride"), config
    )
    variants["entropy branch + cold MLP"] = mean_error(
        AnalyticalModel(mlp_model="cold"), config
    )
    variants["entropy branch + no MLP"] = mean_error(
        AnalyticalModel(mlp_model="none"), config
    )
    return variants


def test_table6_2_component_errors(benchmark):
    variants = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E17 / Table 6.2 -- error per micro-arch independent "
             "component",
             f"{'variant':<30s} {'mean err':>9s} {'max err':>9s}"]
    for name, (mean, maximum) in variants.items():
        lines.append(f"{name:<30s} {mean:9.1%} {maximum:9.1%}")
    write_table("E17_table6_2", lines)

    # Shape: entropy-based branch input costs little over the oracle;
    # removing MLP modeling costs the most (the paper's ordering).
    full = variants["entropy branch + stride MLP"][0]
    oracle = variants["oracle branch + stride MLP"][0]
    none = variants["entropy branch + no MLP"][0]
    assert abs(full - oracle) < 0.10
    assert none > full
