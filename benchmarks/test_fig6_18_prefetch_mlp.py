"""E23 -- Fig 6.18: MLP model accuracy with a stride prefetcher enabled.

Paper shape: only the stride MLP model can account for prefetching (the
cold-miss model has no notion of strides); with the prefetcher on, the
stride model's error stays low while the cold-miss model's grows.
Additionally, both the simulator and the model must agree that the
prefetcher helps streaming workloads.
"""

from dataclasses import replace

from conftest import SHORT_TRACE_LENGTH, get_profile, get_trace, write_table

from repro.core import AnalyticalModel, nehalem
from repro.simulator import simulate

WORKLOADS = ["libquantum", "milc", "lbm", "bwaves", "leslie3d", "wrf"]


def run_experiment():
    base = nehalem()
    prefetching = replace(base, prefetch=True)
    stride = AnalyticalModel(mlp_model="stride")
    cold = AnalyticalModel(mlp_model="cold")
    rows = {}
    for name in WORKLOADS:
        trace = get_trace(name, SHORT_TRACE_LENGTH)
        profile = get_profile(name, SHORT_TRACE_LENGTH)
        sim_base = simulate(trace, base)
        sim_prefetch = simulate(trace, prefetching)
        stride_prediction = stride.predict_performance(profile, prefetching)
        cold_prediction = cold.predict_performance(profile, prefetching)
        rows[name] = (
            sim_base.cpi, sim_prefetch.cpi,
            stride_prediction.cpi, cold_prediction.cpi,
        )
    return rows


def test_fig6_18_prefetch_mlp(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E23 / Fig 6.18 -- MLP models with stride prefetching",
             f"{'benchmark':<12s} {'sim':>8s} {'sim+pf':>8s} "
             f"{'stride':>8s} {'cold':>8s}"]
    stride_errors = []
    cold_errors = []
    helped = 0
    for name, (sim, sim_pf, stride_cpi, cold_cpi) in rows.items():
        lines.append(
            f"{name:<12s} {sim:8.3f} {sim_pf:8.3f} {stride_cpi:8.3f} "
            f"{cold_cpi:8.3f}"
        )
        stride_errors.append(abs(stride_cpi - sim_pf) / sim_pf)
        cold_errors.append(abs(cold_cpi - sim_pf) / sim_pf)
        if sim_pf <= sim * 1.01:
            helped += 1
    mean_stride = sum(stride_errors) / len(stride_errors)
    mean_cold = sum(cold_errors) / len(cold_errors)
    lines.append(f"mean |err| vs prefetching sim -- stride: "
                 f"{mean_stride:.1%}  cold: {mean_cold:.1%}")
    write_table("E23_fig6_18", lines)

    # Shape: prefetching never hurts these workloads in simulation, and
    # the prefetch-aware stride model stays accurate on the prefetching
    # machine.  (On bus-bound streams prefetching is bandwidth-neutral,
    # so both MLP models can land close; the stride model must simply
    # remain in a tight band and not collapse like it would without
    # Eq 4.13 -- the paper's 16.9% -> 3.6% contrast appears on its
    # latency-bound traces.)
    assert helped >= len(rows) * 0.8
    assert mean_stride < 0.15
    assert mean_stride <= mean_cold + 0.10
