"""E04 -- Fig 3.7: base-component error vs a miss-event-free processor.

Paper shape: the prediction error of the base component falls as each
refinement lands -- instructions/D (41.6%) -> uops/D (32.7%) -> + critical
path (23.3%) -> + functional ports/units (11.7%).
"""

from conftest import SHORT_TRACE_LENGTH, get_profile, get_trace, write_table

from repro.core import nehalem
from repro.core.dispatch import effective_dispatch_rate
from repro.simulator import simulate

WORKLOADS = ["gcc", "gamess", "libquantum", "mcf", "gromacs", "gobmk",
             "milc", "povray", "hmmer", "namd"]


def base_cycle_variants(profile, config):
    """Cycles predicted by each successive refinement of the base term."""
    mix = profile.mix
    limits = effective_dispatch_rate(mix, profile.chains, config)
    dependence_rate = min(limits.dispatch_width, limits.dependences)
    return {
        "instructions/D": mix.num_instructions / config.dispatch_width,
        "uops/D": mix.num_uops / config.dispatch_width,
        "+critical path": mix.num_uops / dependence_rate,
        "+functional units": mix.num_uops / limits.effective(),
    }


def run_experiment():
    config = nehalem()
    errors = {key: [] for key in (
        "instructions/D", "uops/D", "+critical path", "+functional units"
    )}
    for name in WORKLOADS:
        trace = get_trace(name, SHORT_TRACE_LENGTH)
        perfect = simulate(trace, config, perfect_frontend=True,
                           perfect_caches=True)
        profile = get_profile(name, SHORT_TRACE_LENGTH)
        scale = len(trace) / profile.mix.num_instructions
        for key, cycles in base_cycle_variants(profile, config).items():
            predicted = cycles * scale
            errors[key].append(
                abs(predicted - perfect.cycles) / perfect.cycles
            )
    return errors


def test_fig3_7_base_component_error(benchmark):
    errors = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E04 / Fig 3.7 -- base component error vs perfect-processor "
             "simulation",
             f"{'variant':<20s} {'mean err':>9s} {'max err':>9s}"]
    means = {}
    for key, values in errors.items():
        means[key] = sum(values) / len(values)
        lines.append(
            f"{key:<20s} {means[key]:9.1%} {max(values):9.1%}"
        )
    write_table("E04_fig3_7", lines)

    # Shape: each refinement must not hurt, and the full model must be
    # clearly better than the naive instructions/D estimate.
    assert means["+functional units"] < means["instructions/D"]
    assert means["+functional units"] < means["uops/D"]
    assert means["+functional units"] < 0.30
