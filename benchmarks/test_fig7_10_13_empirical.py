"""E29 -- Fig 7.10-7.13: mechanistic model vs empirical regression model.

Paper shape: the empirical model (trained on simulation results) predicts
averages well, but the mechanistic model tracks per-design trends better,
yielding equal-or-better Pareto filtering (sensitivity/specificity/HVR)
-- especially when the empirical model must extrapolate.
"""

from conftest import get_space_data, write_table

from repro.core.power import PowerModel
from repro.explore.empirical import EmpiricalModel
from repro.explore.pareto import pareto_metrics
from conftest import get_profile, SHORT_TRACE_LENGTH


def run_experiment():
    data = get_space_data()

    # Train empirical CPI/power models on HALF the (workload, config)
    # simulation results; evaluate on everything (the paper's setup:
    # empirical models need simulations of the same space to train).
    cpi_samples = []
    watt_samples = []
    for workload, points in data.items():
        profile = get_profile(workload, SHORT_TRACE_LENGTH)
        for index, (config, sim, _) in enumerate(points):
            if index % 2 == 0:
                backend = PowerModel(config)
                sim_watts = backend.evaluate(sim.activity).total
                cpi_samples.append((profile, config, sim.cpi))
                watt_samples.append((profile, config, sim_watts))
    empirical_cpi = EmpiricalModel().fit(cpi_samples)
    empirical_watts = EmpiricalModel().fit(watt_samples)

    rows = {}
    for workload, points in data.items():
        profile = get_profile(workload, SHORT_TRACE_LENGTH)
        true_points = []
        mechanistic_points = []
        empirical_points = []
        for config, sim, result in points:
            backend = PowerModel(config)
            sim_watts = backend.evaluate(sim.activity).total
            true_points.append((sim.seconds, sim_watts))
            mechanistic_points.append(
                (result.seconds, result.power_watts)
            )
            cpi = max(empirical_cpi.predict(profile, config), 1e-3)
            watts = max(empirical_watts.predict(profile, config), 1e-3)
            seconds = cpi * sim.instructions / (config.frequency_ghz * 1e9)
            empirical_points.append((seconds, watts))
        rows[workload] = (
            pareto_metrics(true_points, mechanistic_points),
            pareto_metrics(true_points, empirical_points),
        )
    return rows


def test_fig7_10_13_empirical(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E29 / Fig 7.10-7.13 -- mechanistic vs empirical model",
             f"{'workload':<12s} {'mech HVR':>9s} {'emp HVR':>9s} "
             f"{'mech spec':>10s} {'emp spec':>10s}"]
    mech_hvr = 0.0
    emp_hvr = 0.0
    for workload, (mechanistic, empirical) in rows.items():
        lines.append(
            f"{workload:<12s} {mechanistic.hvr:9.2f} {empirical.hvr:9.2f} "
            f"{mechanistic.specificity:10.2f} "
            f"{empirical.specificity:10.2f}"
        )
        mech_hvr += mechanistic.hvr
        emp_hvr += empirical.hvr
    n = len(rows)
    lines.append(f"mean HVR -- mechanistic {mech_hvr / n:.2f}, "
                 f"empirical {emp_hvr / n:.2f}")
    write_table("E29_fig7_10_13", lines)

    # Shape: the mechanistic model's Pareto coverage is at least
    # competitive with the (simulation-trained) empirical baseline.
    assert mech_hvr / n >= emp_hvr / n - 0.10
    assert mech_hvr / n > 0.7
