"""E12 -- Fig 5.3/5.4: logarithmic ROB interpolation of dependence chains.

Paper shape: profiling every 16th ROB size and log-fitting between the
points reproduces the skipped sizes with sub-percent error (thesis: 0.34%
AP / 0.23% ABP / 0.61% CP on average, max < 1%).
"""

from conftest import SHORT_TRACE_LENGTH, get_trace, write_table

from repro.profiler.dependences import profile_dependence_chains
from repro.workloads import workload_names

WORKLOADS = workload_names()[::3]  # every third benchmark: 10 workloads


def run_experiment():
    dense_grid = tuple(range(16, 257, 16))
    sparse_grid = tuple(range(16, 257, 32))
    holdout = [g for g in dense_grid if g not in sparse_grid]
    rows = {}
    for name in WORKLOADS:
        instructions = get_trace(name, SHORT_TRACE_LENGTH).instructions[:4000]
        dense = profile_dependence_chains(instructions, grid=dense_grid)
        sparse = profile_dependence_chains(instructions, grid=sparse_grid)
        errors = {"ap": [], "abp": [], "cp": []}
        for rob in holdout:
            for stat in errors:
                reference = getattr(dense, stat).values[rob]
                if reference <= 0:
                    continue
                interpolated = getattr(sparse, stat).at(rob)
                errors[stat].append(
                    abs(interpolated - reference) / reference
                )
        rows[name] = {
            stat: sum(v) / len(v) if v else 0.0
            for stat, v in errors.items()
        }
    return rows


def test_fig5_4_chain_interpolation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E12 / Fig 5.4 -- log-fit ROB interpolation error",
             f"{'benchmark':<14s} {'AP':>8s} {'ABP':>8s} {'CP':>8s}"]
    for name, errors in sorted(rows.items()):
        lines.append(
            f"{name:<14s} {errors['ap']:8.2%} {errors['abp']:8.2%} "
            f"{errors['cp']:8.2%}"
        )
    means = {
        stat: sum(r[stat] for r in rows.values()) / len(rows)
        for stat in ("ap", "abp", "cp")
    }
    lines.append(
        f"{'MEAN':<14s} {means['ap']:8.2%} {means['abp']:8.2%} "
        f"{means['cp']:8.2%}"
    )
    write_table("E12_fig5_4", lines)

    # Shape: interpolation error stays in the low single-digit percent
    # range for all three statistics (thesis: < 1%).
    for stat, mean in means.items():
        assert mean < 0.06, stat
