"""E11 -- Fig 5.2 / Eq 5.1: sampled vs full instruction mix.

Paper shape: sampling micro-traces (1/1000 in the thesis; 1/5 at our
scale) perturbs per-category uop fractions by well under a percent on
average (thesis: 0.08% average, 1.8% max).
"""

from conftest import SAMPLING, get_trace, write_table

from repro.profiler.mix import UopMix, profile_mix
from repro.profiler.sampling import iter_micro_traces
from repro.workloads import workload_names


def run_experiment():
    rows = {}
    for name in workload_names():
        trace = get_trace(name)
        full = profile_mix(trace)
        sampled = UopMix()
        for _, micro in iter_micro_traces(trace.instructions, SAMPLING):
            sampled.merge(profile_mix(micro))
        # Eq 5.1: per-category error normalized by total uops.
        categories = set(full.counts) | set(sampled.counts)
        errors = [
            abs(sampled.fraction(kind) - full.fraction(kind))
            for kind in categories
        ]
        rows[name] = (sum(errors) / len(errors), max(errors))
    return rows


def test_fig5_2_mix_sampling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E11 / Fig 5.2 -- instruction mix sampling error (Eq 5.1)",
             f"{'benchmark':<14s} {'mean err':>9s} {'max err':>9s}"]
    for name, (mean, maximum) in sorted(rows.items()):
        lines.append(f"{name:<14s} {mean:9.3%} {maximum:9.3%}")
    overall_mean = sum(m for m, _ in rows.values()) / len(rows)
    overall_max = max(m for _, m in rows.values())
    lines.append(f"{'OVERALL':<14s} {overall_mean:9.3%} {overall_max:9.3%}")
    write_table("E11_fig5_2", lines)

    # Shape: average error well below a percent, max a few percent.
    assert overall_mean < 0.01
    assert overall_max < 0.06
