#!/usr/bin/env python3
"""Benchmark: the experiment service must make N clients cheaper than N runs.

Acceptance checks for the ``repro serve`` layer (:mod:`repro.serve`):

* **dedup** -- 16 concurrent identical sweep requests against a cold
  server must execute **exactly one** engine computation (the rest
  coalesce in flight or hit the store the one computation warmed);
* **warm latency** -- once the store is warm, the median round-trip for
  a non-streaming request must stay under **50 ms** (the store
  pre-check path must never wait behind the batch window);
* **sharded lookups** -- direct :class:`ShardedRunStore` lookups must
  stay flat as the store grows 10x (300 -> 3000 entries): the mean
  per-lookup time may grow by at most **2.5x** (flat-directory scans
  would blow past that).

Results land in ``benchmarks/results/E37_serve.txt`` and the
machine-readable perf-trajectory record in ``BENCH_serve.json`` at the
repository root (all ``bench_*`` scripts put their ``BENCH_*.json``
there).

Run:  PYTHONPATH=src python benchmarks/bench_serve.py
      PYTHONPATH=src python benchmarks/bench_serve.py --warm-requests 100
"""

import argparse
import json
import os
import platform
import shutil
import statistics
import sys
import tempfile
import threading
import time

from repro.api import ExperimentSpec, Session
from repro.api.results import RunResult
from repro.serve import ServerThread, ShardedRunStore, get_json, request_run

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
HOST = "127.0.0.1"
N_CLIENTS = 16
MAX_WARM_MEDIAN_MS = 50.0
SMALL_STORE = 300
LARGE_STORE = 3000
LOOKUPS = 200
MAX_LOOKUP_GROWTH = 2.5

SWEEP = {"kind": "sweep",
         "params": {"workloads": ["gcc"], "limit": 16,
                    "instructions": 10_000}}


def concurrent_identical_sweeps(port):
    """Fire N_CLIENTS identical sweeps at once; return the replies."""
    replies = [None] * N_CLIENTS
    barrier = threading.Barrier(N_CLIENTS)

    def fire(index):
        barrier.wait()
        replies[index] = request_run(HOST, port, SWEEP, timeout=300)

    threads = [threading.Thread(target=fire, args=(i,))
               for i in range(N_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return replies


def warm_latencies(port, requests):
    """Round-trip milliseconds for sequential warm requests."""
    samples = []
    for _ in range(requests):
        t0 = time.perf_counter()
        reply = request_run(HOST, port, SWEEP, timeout=60)
        samples.append((time.perf_counter() - t0) * 1e3)
        assert reply["cached"], "warm request missed the store"
    return samples


def synthetic_result(index):
    """A distinct, tiny storable result."""
    spec = ExperimentSpec("predict", workload="gcc",
                          instructions=5000 + index)
    return RunResult(spec=spec, data={"index": index})


def mean_lookup_ms(root, n_entries, start=0):
    """Grow the store to ``n_entries`` and time LOOKUPS mean gets.

    Lookup keys are spread deterministically across the whole store;
    a fresh store instance does the reads so the timed path includes
    the recency-seed scan amortized over the lookups, exactly like a
    restarted server.
    """
    writer = ShardedRunStore(root)
    specs = []
    for index in range(start, n_entries):
        result = synthetic_result(index)
        writer.put(result)
    reader = ShardedRunStore(root)
    stride = max(1, n_entries // LOOKUPS)
    specs = [synthetic_result(i).spec
             for i in range(0, n_entries, stride)][:LOOKUPS]
    t0 = time.perf_counter()
    for spec in specs:
        if reader.get(spec) is None:
            raise AssertionError("benchmark lookup missed")
    elapsed = time.perf_counter() - t0
    return elapsed * 1e3 / len(specs)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--warm-requests", type=int, default=50,
                        help="sequential warm requests to sample")
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="bench_serve_")
    try:
        store = ShardedRunStore(os.path.join(workdir, "runs"))
        session = Session(workers=1, run_store=store)
        with ServerThread(session, port=0) as thread:
            t0 = time.perf_counter()
            replies = concurrent_identical_sweeps(thread.port)
            t_concurrent = time.perf_counter() - t0
            stats = get_json(HOST, thread.port, "/stats")
            computations = stats["server"]["computations"]
            coalesced = stats["server"]["coalesced"]
            distinct = {json.dumps(r["result"]["data"], sort_keys=True)
                        for r in replies}

            samples = warm_latencies(thread.port, args.warm_requests)
            warm_median = statistics.median(samples)
            warm_p90 = sorted(samples)[int(0.9 * len(samples))]
        session.close()

        shard_root = os.path.join(workdir, "shards")
        small_ms = mean_lookup_ms(shard_root, SMALL_STORE)
        large_ms = mean_lookup_ms(shard_root, LARGE_STORE,
                                  start=SMALL_STORE)
        growth = large_ms / small_ms if small_ms else float("inf")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    lines = [
        "E37: multi-tenant experiment service "
        "(dedup / warm latency / sharded store)",
        f"dedup: {N_CLIENTS} concurrent identical sweeps in "
        f"{t_concurrent * 1e3:.1f} ms -> {computations} engine "
        f"computation(s), {coalesced} coalesced, "
        f"{len(distinct)} distinct payload(s)",
        f"warm : median {warm_median:.2f} ms, p90 {warm_p90:.2f} ms "
        f"over {args.warm_requests} requests "
        f"(gate < {MAX_WARM_MEDIAN_MS:.0f} ms)",
        f"shard: mean lookup {small_ms:.3f} ms @{SMALL_STORE} entries, "
        f"{large_ms:.3f} ms @{LARGE_STORE} entries "
        f"({growth:.2f}x, gate < {MAX_LOOKUP_GROWTH}x)",
    ]
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(text)
    with open(os.path.join(RESULTS_DIR, "E37_serve.txt"), "w") as f:
        f.write(text + "\n")

    record = {
        "experiment": "E37_serve",
        "n_clients": N_CLIENTS,
        "sweep_limit": SWEEP["params"]["limit"],
        "instructions": SWEEP["params"]["instructions"],
        "warm_requests": args.warm_requests,
        "computations": computations,
        "coalesced": coalesced,
        "distinct_payloads": len(distinct),
        "concurrent_seconds": round(t_concurrent, 6),
        "warm_median_ms": round(warm_median, 4),
        "warm_p90_ms": round(warm_p90, 4),
        "max_warm_median_ms": MAX_WARM_MEDIAN_MS,
        "small_store_entries": SMALL_STORE,
        "large_store_entries": LARGE_STORE,
        "lookup_ms_small": round(small_ms, 5),
        "lookup_ms_large": round(large_ms, 5),
        "lookup_growth": round(growth, 4),
        "max_lookup_growth": MAX_LOOKUP_GROWTH,
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
    }
    with open(os.path.join(ROOT, "BENCH_serve.json"), "w") as f:
        json.dump(record, f, indent=2)

    failed = False
    if computations != 1 or len(distinct) != 1:
        print(f"FAIL: {N_CLIENTS} identical sweeps cost "
              f"{computations} computation(s) "
              f"({len(distinct)} distinct payload(s))", file=sys.stderr)
        failed = True
    if warm_median >= MAX_WARM_MEDIAN_MS:
        print(f"FAIL: warm median {warm_median:.2f} ms >= "
              f"{MAX_WARM_MEDIAN_MS:.0f} ms", file=sys.stderr)
        failed = True
    if growth >= MAX_LOOKUP_GROWTH:
        print(f"FAIL: lookup cost grew {growth:.2f}x from "
              f"{SMALL_STORE} to {LARGE_STORE} entries", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
