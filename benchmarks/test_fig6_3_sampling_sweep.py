"""E16 -- Fig 6.3: prediction error vs number of instructions profiled.

Paper shape: accuracy degrades gracefully as the sampling ratio drops;
1k-instruction micro-traces every 1M keep the error near the full-profile
level.  At our scale we sweep 1/1 .. 1/10 sampling on 60k-instruction
traces (sparse sampling needs enough windows to avoid phase aliasing).
"""

from conftest import get_simulation, get_trace, write_table

from repro.core import AnalyticalModel, nehalem
from repro.profiler import SamplingConfig, profile_application

WORKLOADS = ["gcc", "libquantum", "gamess", "mcf"]
RATIOS = [(1000, 1000), (1000, 2000), (1000, 5000), (1000, 10_000)]
LENGTH = 60_000


def run_experiment():
    model = AnalyticalModel()
    config = nehalem()
    table = {}
    for micro, window in RATIOS:
        errors = []
        for name in WORKLOADS:
            trace = get_trace(name, LENGTH)
            sim = get_simulation(name, length=LENGTH)
            profile = profile_application(
                trace, SamplingConfig(micro, window)
            )
            prediction = model.predict_performance(profile, config)
            errors.append(abs(prediction.cpi - sim.cpi) / sim.cpi)
        table[f"1/{window // micro}"] = sum(errors) / len(errors)
    return table


def test_fig6_3_sampling_sweep(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E16 / Fig 6.3 -- error vs sampling ratio (60k traces)",
             f"{'sampling':<10s} {'mean |CPI err|':>15s}"]
    for ratio, error in table.items():
        lines.append(f"{ratio:<10s} {error:15.1%}")
    write_table("E16_fig6_3", lines)

    # Shape: sparser sampling must not catastrophically degrade accuracy
    # (the paper's graceful decay); all points stay in a usable band.
    full = table["1/1"]
    sparsest = table["1/10"]
    assert sparsest < full + 0.25
    for error in table.values():
        assert error < 0.45
