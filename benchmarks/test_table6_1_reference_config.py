"""E14 -- Table 6.1/6.4: the reference Nehalem-like configuration."""

from conftest import write_table

from repro.core import nehalem


def build_table():
    config = nehalem()
    return config, [
        ("dispatch width", config.dispatch_width, 4),
        ("ROB size", config.rob_size, 128),
        ("issue ports", len(config.ports), 6),
        ("L1I size (KB)", config.l1i.size_bytes // 1024, 32),
        ("L1D size (KB)", config.l1d.size_bytes // 1024, 32),
        ("L2 size (KB)", config.l2.size_bytes // 1024, 256),
        ("LLC size (MB)", config.llc.size_bytes // (1024 * 1024), 8),
        ("L1D latency", config.l1d.latency, 4),
        ("L2 latency", config.l2.latency, 12),
        ("LLC latency", config.llc.latency, 30),
        ("DRAM latency", config.dram_latency, 200),
        ("MSHR entries", config.mshr_entries, 10),
        ("frequency (GHz)", config.frequency_ghz, 2.66),
    ]


def test_table6_1_reference_config(benchmark):
    config, rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    lines = ["E14 / Table 6.1 -- reference architecture "
             "(Intel Nehalem-like)",
             f"{'parameter':<18s} {'value':>8s}"]
    for name, value, expected in rows:
        lines.append(f"{name:<18s} {value:>8}")
    lines.append(f"branch predictor: {config.predictor}")
    write_table("E14_table6_1", lines)

    for name, value, expected in rows:
        assert value == expected, name
    assert config.predictor == "tournament"
