"""E24 -- Fig 7.1/7.2: application-specific cores vs a general-purpose
core.

Paper shape: picking the best core per application from the design space
(using only model predictions) beats the single best-on-average core --
the motivating ASIP use case.
"""

from conftest import get_space_data, write_table


def run_experiment():
    data = get_space_data()
    # General-purpose core: best average (model-) CPI across workloads.
    config_names = [config.name for config, _, _ in
                    next(iter(data.values()))]
    average_cpi = {}
    for index, config_name in enumerate(config_names):
        cpis = [data[w][index][2].cpi for w in data]
        average_cpi[config_name] = sum(cpis) / len(cpis)
    general = min(average_cpi, key=average_cpi.get)

    rows = {}
    for workload, points in data.items():
        best_index = min(
            range(len(points)), key=lambda i: points[i][2].cpi
        )
        general_index = config_names.index(general)
        rows[workload] = (
            points[best_index][0].name,
            points[best_index][2].cpi,
            points[general_index][2].cpi,
            # Ground truth for the same choices:
            points[best_index][1].cpi,
            points[general_index][1].cpi,
        )
    return general, rows


def test_fig7_2_specialized_cores(benchmark):
    general, rows = benchmark.pedantic(run_experiment, rounds=1,
                                       iterations=1)

    lines = ["E24 / Fig 7.2 -- application-specific vs general-purpose "
             "core",
             f"general-purpose core: {general}",
             f"{'workload':<12s} {'best core':<28s} {'modBest':>8s} "
             f"{'modGen':>8s} {'simBest':>8s} {'simGen':>8s}"]
    for workload, (best_name, mod_best, mod_gen, sim_best,
                   sim_gen) in rows.items():
        lines.append(
            f"{workload:<12s} {best_name:<28s} {mod_best:8.3f} "
            f"{mod_gen:8.3f} {sim_best:8.3f} {sim_gen:8.3f}"
        )
    write_table("E24_fig7_2", lines)

    # Shape: per-application selection never loses to the general core in
    # the model's own metric, and the model-chosen specialist is at least
    # competitive in ground truth.
    for workload, (best_name, mod_best, mod_gen, sim_best,
                   sim_gen) in rows.items():
        assert mod_best <= mod_gen + 1e-9, workload
        assert sim_best <= sim_gen * 1.15, workload
