#!/usr/bin/env python3
"""Benchmark: validation campaign — parallel simulation + §7.4 report.

Acceptance check for the validation subsystem, on >= 2 workloads over a
>= 64-configuration space:

* the campaign report (per-design errors, CPI-stack errors, the §7.4
  sensitivity/specificity/accuracy/HVR metrics and the §7.5
  empirical-baseline comparison) must be **bitwise identical** between
  ``workers=1`` and ``workers=4``;
* the parallel simulator path must be at least 2x faster than the
  serial one.  Simulation is embarrassingly parallel, so the check is
  gated on hardware concurrency: the 2x bar applies with >= 4 CPUs, a
  relaxed 1.2x bar with 2-3 CPUs, and on a single-CPU host the timing
  is reported but not asserted (no physics makes a pool beat a loop on
  one core);
* the mechanistic model must beat the sparsely-trained empirical
  baseline at *tracking the Pareto front* of the held-out designs
  (strictly higher HVR, no worse classification accuracy) for every
  workload.  That is the §7.5 outcome: an empirical regression trained
  on simulated samples predicts average CPI well -- it has no
  systematic bias against its own training signal -- but ranks designs
  worse than the mechanistic model unless trained densely on the same
  space, which is why the training subsample here is sparse (8%).

Results land in ``benchmarks/results/E32_validation.txt`` and the full
JSON report in ``benchmarks/results/E32_validation_report.json``; the
machine-readable perf-trajectory record lands in
``BENCH_validate.json`` at the repository root (all ``bench_*``
scripts put their ``BENCH_*.json`` there).

Run:  PYTHONPATH=src python benchmarks/bench_validate.py
      PYTHONPATH=src python benchmarks/bench_validate.py --configs 96
"""

import argparse
import json
import os
import platform
import sys
import time

from repro.core.machine import design_space
from repro.explore.validate import (
    SimulationSweep,
    ValidationCampaign,
    ValidationCase,
)
from repro.profiler import SamplingConfig, profile_application
from repro.workloads import generate_trace, make_workload

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
WORKLOADS = ["gcc", "mcf"]
INSTRUCTIONS = 8_000
SAMPLING = SamplingConfig(1000, 4000)
PARALLEL_WORKERS = 4
#: Sparse on purpose: the §7.5 comparison is about filtering quality
#: under *cheap* training, not dense interpolation of the grid.
TRAIN_FRACTION = 0.08

#: 2 x 2 x 2 x 3 x 3 = 72 >= 64 configurations.
SPACE_AXES = {
    "dispatch_width": (2, 4),
    "rob_size": (64, 128),
    "l1d_kb": (16, 32),
    "llc_mb": (2, 4, 8),
    "frequency_ghz": (1.66, 2.66, 3.66),
}


def build_cases():
    """Trace + profile each benchmark workload once."""
    cases = []
    for name in WORKLOADS:
        trace = generate_trace(make_workload(name),
                               max_instructions=INSTRUCTIONS)
        profile = profile_application(trace, SAMPLING)
        cases.append(ValidationCase(profile=profile, trace=trace))
    return cases


def report_signature(report):
    """The worker-count independent part of a report, as canonical JSON."""
    data = report.as_dict()
    data.pop("model_workers")
    data.pop("sim_workers")
    return json.dumps(data, sort_keys=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--configs", type=int, default=None,
                        help="truncate the space to N configurations")
    args = parser.parse_args()

    configs = design_space(SPACE_AXES)
    if args.configs is not None:
        configs = configs[:args.configs]
    assert len(configs) >= 64, f"space too small: {len(configs)}"
    cpus = os.cpu_count() or 1

    cases = build_cases()
    traces = [case.trace for case in cases]

    # -- timing: serial vs parallel simulation sweep -------------------
    t0 = time.perf_counter()
    serial_points = list(
        SimulationSweep(workers=1).iter_sweep(traces, configs))
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel_points = list(
        SimulationSweep(workers=PARALLEL_WORKERS).iter_sweep(
            traces, configs))
    t_parallel = time.perf_counter() - t0
    speedup = t_serial / t_parallel

    points_identical = len(serial_points) == len(parallel_points) and all(
        a.workload == b.workload
        and a.config.name == b.config.name
        and a.result.cycles == b.result.cycles
        and a.power_watts == b.power_watts
        for a, b in zip(serial_points, parallel_points)
    )

    # -- identity: full campaign at both worker counts -----------------
    signatures = {}
    reports = {}
    for workers in (1, PARALLEL_WORKERS):
        campaign = ValidationCampaign(
            cases, configs, model_workers=workers, sim_workers=workers,
            train_fraction=TRAIN_FRACTION, seed=0,
            space_name="bench-validate",
        )
        reports[workers] = campaign.run()
        signatures[workers] = report_signature(reports[workers])
    reports_identical = (
        signatures[1] == signatures[PARALLEL_WORKERS]
    )
    report = reports[1]

    lines = [
        "E32: validation campaign (model vs cycle-level simulator)",
        f"grid: {len(WORKLOADS)} workloads x {len(configs)} configs, "
        f"{INSTRUCTIONS} instructions/trace; {cpus} CPU(s)",
        f"simulation sweep: serial {t_serial:.2f} s, "
        f"{PARALLEL_WORKERS}-worker {t_parallel:.2f} s "
        f"-> {speedup:.2f}x "
        f"({'identical' if points_identical else 'MISMATCH'} points)",
        f"workers=1 vs workers={PARALLEL_WORKERS} report: "
        f"{'bitwise identical' if reports_identical else 'MISMATCH'}",
        "",
    ]
    lines.extend(report.summary_lines())

    failures = []
    if not points_identical:
        failures.append("parallel simulation points diverged")
    if not reports_identical:
        failures.append(
            f"workers=1 vs workers={PARALLEL_WORKERS} reports diverged")
    if cpus >= 4:
        required = 2.0
    elif cpus >= 2:
        required = 1.2
    else:
        required = None
        lines.append(
            "speedup bar skipped: single-CPU host (a worker pool "
            "cannot beat a serial loop on one core)")
    if required is not None and speedup < required:
        failures.append(
            f"parallel simulation speedup {speedup:.2f}x below the "
            f"{required:.1f}x bar for {cpus} CPUs")
    for w in report.workloads:
        baseline = w.baseline
        if baseline is None:
            failures.append(f"{w.workload}: no baseline comparison")
            continue
        mech = baseline.mechanistic_metrics
        emp = baseline.empirical_metrics
        if mech.hvr <= emp.hvr:
            failures.append(
                f"{w.workload}: mechanistic HVR {mech.hvr:.3f} not "
                f"above the sparse empirical baseline's {emp.hvr:.3f}")
        if mech.accuracy < emp.accuracy:
            failures.append(
                f"{w.workload}: mechanistic Pareto accuracy "
                f"{mech.accuracy:.2f} below the empirical baseline's "
                f"{emp.accuracy:.2f}")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(text)
    with open(os.path.join(RESULTS_DIR, "E32_validation.txt"),
              "w") as handle:
        handle.write(text + "\n")
    with open(os.path.join(RESULTS_DIR, "E32_validation_report.json"),
              "w") as handle:
        json.dump(report.as_dict(), handle, indent=2)

    record = {
        "experiment": "E32_validation",
        "workloads": WORKLOADS,
        "instructions": INSTRUCTIONS,
        "n_configs": len(configs),
        "parallel_workers": PARALLEL_WORKERS,
        "train_fraction": TRAIN_FRACTION,
        "serial_seconds": round(t_serial, 6),
        "parallel_seconds": round(t_parallel, 6),
        "speedup": round(speedup, 3),
        "points_identical": points_identical,
        "reports_identical": reports_identical,
        "host": {
            "python": platform.python_version(),
            "cpus": cpus,
            "machine": platform.machine(),
        },
    }
    with open(os.path.join(ROOT, "BENCH_validate.json"),
              "w") as handle:
        json.dump(record, handle, indent=2)

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nPASS: deterministic at any worker count; parallel "
          "simulation meets the concurrency-gated speedup bar; "
          "mechanistic model out-filters the sparse empirical "
          "baseline (higher HVR, no worse accuracy)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
