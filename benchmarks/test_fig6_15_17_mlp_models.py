"""E22 -- Fig 6.15-6.17: cold-miss vs stride MLP model accuracy.

Paper shape: the stride model's DRAM-component prediction beats the
cold-miss model on full traces (CAL'18: 16.9% -> 3.6% average for the
DRAM waiting time); the cumulative error distribution of the stride model
dominates.
"""

from conftest import get_profile, get_simulation, write_table

from repro.core import AnalyticalModel, nehalem

WORKLOADS = ["libquantum", "milc", "lbm", "bwaves", "mcf", "omnetpp",
             "gcc", "leslie3d", "soplex", "zeusmp"]


def run_experiment():
    config = nehalem()
    stride = AnalyticalModel(mlp_model="stride")
    cold = AnalyticalModel(mlp_model="cold")
    rows = {}
    for name in WORKLOADS:
        sim = get_simulation(name)
        profile = get_profile(name)
        stride_prediction = stride.predict_performance(profile, config)
        cold_prediction = cold.predict_performance(profile, config)
        rows[name] = (sim.cpi, stride_prediction.cpi, cold_prediction.cpi)
    return rows


def test_fig6_15_17_mlp_models(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E22 / Fig 6.15-6.17 -- stride vs cold-miss MLP model",
             f"{'benchmark':<12s} {'simCPI':>8s} {'stride':>8s} "
             f"{'cold':>8s} {'strErr':>8s} {'coldErr':>8s}"]
    stride_errors = []
    cold_errors = []
    for name, (sim_cpi, stride_cpi, cold_cpi) in rows.items():
        stride_error = abs(stride_cpi - sim_cpi) / sim_cpi
        cold_error = abs(cold_cpi - sim_cpi) / sim_cpi
        stride_errors.append(stride_error)
        cold_errors.append(cold_error)
        lines.append(
            f"{name:<12s} {sim_cpi:8.3f} {stride_cpi:8.3f} "
            f"{cold_cpi:8.3f} {stride_error:8.1%} {cold_error:8.1%}"
        )
    mean_stride = sum(stride_errors) / len(stride_errors)
    mean_cold = sum(cold_errors) / len(cold_errors)
    lines.append(f"mean |err| stride: {mean_stride:.1%}   "
                 f"cold: {mean_cold:.1%}")
    write_table("E22_fig6_15_17", lines)

    # Shape: the stride model is at least as accurate as the cold-miss
    # model on average over memory-intensive workloads.
    assert mean_stride <= mean_cold + 0.02
    assert mean_stride < 0.30
