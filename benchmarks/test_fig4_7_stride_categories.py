"""E09 -- Fig 4.7: stride category ratios per benchmark.

Paper shape: most loads are single-strided for the majority of
benchmarks; the filtering categories matter for a meaningful share; a few
benchmarks (cactusADM, omnetpp, xalancbmk) are dominated by unique or
random loads.
"""

from collections import Counter

from conftest import get_profile, write_table

from repro.workloads import workload_names

CATEGORIES = ["STRIDE", "FILTER-1", "FILTER-2", "FILTER-3", "FILTER-4",
              "RANDOM", "UNIQUE"]


def run_experiment():
    rows = {}
    for name in workload_names():
        profile = get_profile(name)
        total = Counter()
        for micro in profile.micro_traces:
            total.update(micro.memory.stride_categories())
        count = sum(total.values()) or 1
        rows[name] = {c: total.get(c, 0) / count for c in CATEGORIES}
    return rows


def test_fig4_7_stride_categories(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    header = f"{'benchmark':<14s}" + "".join(
        f"{c:>10s}" for c in CATEGORIES
    )
    lines = ["E09 / Fig 4.7 -- stride category ratios", header]
    for name, ratios in sorted(rows.items()):
        lines.append(
            f"{name:<14s}" + "".join(
                f"{ratios[c]:10.2f}" for c in CATEGORIES
            )
        )
    write_table("E09_fig4_7", lines)

    # Shape: streaming benchmarks are stride-dominated; pointer chasing
    # produces random-strided loads; ratios are normalized.
    strided = lambda r: (r["STRIDE"] + r["FILTER-1"] + r["FILTER-2"]
                         + r["FILTER-3"] + r["FILTER-4"])
    assert strided(rows["libquantum"]) > 0.5
    assert strided(rows["lbm"]) > 0.5
    assert rows["mcf"]["RANDOM"] + rows["mcf"]["UNIQUE"] > 0.2
    for name, ratios in rows.items():
        assert abs(sum(ratios.values()) - 1.0) < 0.01, name
