"""E28 -- Fig 7.7/7.9: sensitivity / specificity / accuracy / HVR of
Pareto filtering.

Paper shape (averages over the full space): sensitivity 46.2%,
specificity 87.9%, accuracy 76.8%, HVR 97.0% -- i.e. specificity and HVR
high, sensitivity modest (missing clustered optima is acceptable).
"""

from conftest import get_space_data, write_table

from repro.core.power import PowerModel
from repro.explore.pareto import pareto_metrics


def run_experiment():
    data = get_space_data()
    rows = {}
    for workload, points in data.items():
        true_points = []
        predicted_points = []
        for config, sim, result in points:
            backend = PowerModel(config)
            sim_watts = backend.evaluate(sim.activity).total
            true_points.append((sim.seconds, sim_watts))
            predicted_points.append((result.seconds, result.power_watts))
        rows[workload] = pareto_metrics(true_points, predicted_points)
    return rows


def test_fig7_7_pareto_metrics(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E28 / Fig 7.7+7.9 -- Pareto filtering quality",
             f"{'workload':<12s} {'sens':>6s} {'spec':>6s} {'acc':>6s} "
             f"{'HVR':>6s} {'front':>6s}"]
    sums = [0.0, 0.0, 0.0, 0.0]
    for workload, metrics in rows.items():
        lines.append(
            f"{workload:<12s} {metrics.sensitivity:6.2f} "
            f"{metrics.specificity:6.2f} {metrics.accuracy:6.2f} "
            f"{metrics.hvr:6.2f} {metrics.true_front_size:6d}"
        )
        sums[0] += metrics.sensitivity
        sums[1] += metrics.specificity
        sums[2] += metrics.accuracy
        sums[3] += metrics.hvr
    n = len(rows)
    lines.append(
        f"{'MEAN':<12s} {sums[0] / n:6.2f} {sums[1] / n:6.2f} "
        f"{sums[2] / n:6.2f} {sums[3] / n:6.2f}"
    )
    lines.append("paper averages: sens 0.46 / spec 0.88 / acc 0.77 / "
                 "HVR 0.97")
    write_table("E28_fig7_7", lines)

    # Shape: specificity and HVR high; sensitivity allowed to be modest;
    # HVR is the headline metric (design-space coverage).
    assert sums[1] / n > 0.7      # specificity
    assert sums[3] / n > 0.75     # HVR
    assert sums[2] / n > 0.6      # accuracy
