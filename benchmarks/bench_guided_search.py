#!/usr/bin/env python3
"""Benchmark: guided search vs exhaustive sweep (acceptance check).

On a >= 10^4-configuration :class:`DesignSpace`, the seeded
:class:`GeneticAlgorithm` and :class:`SimulatedAnnealing` optimizers
must find a configuration whose objective (EDP, averaged over the
workloads) is within 2% of the exhaustive-sweep optimum while
evaluating at most 5% of the space.  The run also re-executes each
optimizer with engine ``workers=2`` and asserts the trajectory is
bitwise identical to the serial one (determinism at any worker count).

Results -- including the guided-vs-exhaustive evaluation-count ratio --
are appended to ``benchmarks/results/E31_guided_search.txt``; the
machine-readable perf-trajectory record lands in
``BENCH_guided_search.json`` at the repository root (all ``bench_*``
scripts put their ``BENCH_*.json`` there).

Run:  PYTHONPATH=src python benchmarks/bench_guided_search.py
"""

import json
import os
import platform
import sys

from repro.explore import (
    DesignSpace,
    Parameter,
    SearchProblem,
    SweepEngine,
    get_objective,
    make_optimizer,
)
from repro.profiler import SamplingConfig, profile_application
from repro.workloads import generate_trace, make_workload

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
WORKLOADS = ["gcc", "libquantum"]
INSTRUCTIONS = 10_000
SEED = 0
GAP_THRESHOLD = 0.02     # within 2% of the exhaustive optimum
BUDGET_FRACTION = 0.05   # using <= 5% of the space's evaluations
BUDGET = 500             # actual budget used (well under 5%)


def search_space() -> DesignSpace:
    """The >= 10^4-point space the acceptance criterion is checked on."""
    return DesignSpace(
        parameters=(
            Parameter.integer("dispatch_width", 2, 6),
            Parameter.integer("rob_size", 32, 288, 32),
            Parameter.categorical("l1d_kb", (16, 32, 64)),
            Parameter.categorical("l2_kb", (128, 256, 512)),
            Parameter.categorical("llc_mb", (1, 2, 4, 8, 16)),
            Parameter.real("frequency_ghz", 1.2, 3.6, 0.3),
        ),
        name="bench-guided-search",
    )


def trajectory_signature(trajectory):
    """The deterministic part of a trajectory (no wall-clock)."""
    return [(tuple(sorted(e.point.items())), e.fitness)
            for e in trajectory.evaluations]


def main() -> int:
    space = search_space()
    size = space.size()
    assert size >= 10_000, f"space too small: {size}"
    assert BUDGET <= BUDGET_FRACTION * size

    profiles = []
    for name in WORKLOADS:
        trace = generate_trace(make_workload(name),
                               max_instructions=INSTRUCTIONS)
        profiles.append(
            profile_application(trace, SamplingConfig(1000, 5000))
        )

    objective = get_objective("edp")
    problem = SearchProblem(profiles, space, objective,
                            engine=SweepEngine(workers=1))
    optimum_point, optimum = problem.exhaustive_best()

    lines = [
        "E31: guided search vs exhaustive sweep",
        f"space: {size} configurations; budget {BUDGET} "
        f"({100.0 * BUDGET / size:.2f}% of the space); seed {SEED}",
        f"objective: {objective.name} averaged over "
        f"{', '.join(WORKLOADS)}",
        f"exhaustive optimum: {optimum:.6e}",
        f"{'optimizer':<10s} {'evals':>6s} {'eval ratio':>10s} "
        f"{'best':>13s} {'gap':>8s} {'determinism':>12s}",
    ]

    failures = []
    optimizer_records = []
    for name in ("random", "hill", "sa", "ga"):
        serial = SearchProblem(profiles, space, objective,
                               engine=SweepEngine(workers=1))
        trajectory = make_optimizer(name, seed=SEED).search(serial,
                                                            BUDGET)
        parallel = SearchProblem(profiles, space, objective,
                                 engine=SweepEngine(workers=2))
        replay = make_optimizer(name, seed=SEED).search(parallel, BUDGET)
        deterministic = (trajectory_signature(trajectory)
                         == trajectory_signature(replay))
        gap = trajectory.best_fitness / optimum - 1.0
        ratio = len(trajectory) / size
        lines.append(
            f"{name:<10s} {len(trajectory):>6d} {ratio:>9.2%} "
            f"{trajectory.best_fitness:>13.6e} {gap:>7.2%} "
            f"{'ok' if deterministic else 'MISMATCH':>12s}"
        )
        optimizer_records.append({
            "optimizer": name,
            "evaluations": len(trajectory),
            "eval_ratio": round(ratio, 6),
            "best_fitness": trajectory.best_fitness,
            "gap": round(gap, 6),
            "deterministic": deterministic,
        })
        if not deterministic:
            failures.append(f"{name}: workers=2 trajectory diverged")
        if name in ("sa", "ga"):
            if gap > GAP_THRESHOLD:
                failures.append(
                    f"{name}: gap {gap:.2%} above the "
                    f"{GAP_THRESHOLD:.0%} acceptance threshold"
                )
            if ratio > BUDGET_FRACTION:
                failures.append(
                    f"{name}: used {ratio:.2%} of the space "
                    f"(> {BUDGET_FRACTION:.0%})"
                )

    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(text)
    with open(os.path.join(RESULTS_DIR, "E31_guided_search.txt"),
              "w") as handle:
        handle.write(text + "\n")

    record = {
        "experiment": "E31_guided_search",
        "workloads": WORKLOADS,
        "instructions": INSTRUCTIONS,
        "space_size": size,
        "budget": BUDGET,
        "seed": SEED,
        "gap_threshold": GAP_THRESHOLD,
        "budget_fraction": BUDGET_FRACTION,
        "exhaustive_optimum": optimum,
        "optimizers": optimizer_records,
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
    }
    with open(os.path.join(ROOT, "BENCH_guided_search.json"),
              "w") as handle:
        json.dump(record, handle, indent=2)

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nPASS: SA and GA within {GAP_THRESHOLD:.0%} of the "
          f"optimum using <= {BUDGET_FRACTION:.0%} of the space, "
          f"deterministic at any worker count")
    return 0


if __name__ == "__main__":
    sys.exit(main())
