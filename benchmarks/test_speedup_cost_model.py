"""E30 -- §6.2 / Summary: evaluation-cost comparison (the 315x / 18x).

Paper numbers for 29 workloads x 243 configs x 1B instructions:
detailed simulation ~150 days; classic interval model ~200 hours;
micro-architecture independent model ~11.5 hours.
"""

from conftest import write_table

from repro.explore.cost import (
    interval_model_cost,
    micro_arch_independent_cost,
    simulation_cost,
)


def run_experiment():
    # Paper-calibrated parameters: functional sims amortize over the ~37
    # distinct memory/ROB/predictor configurations of the 243-core space;
    # the analysis step costs a few seconds per pair.
    workloads, configs, instructions = 29, 243, 1e9
    sim = simulation_cost(workloads, configs, instructions, mips=0.5)
    interval = interval_model_cost(
        workloads, configs, instructions,
        functional_mips=1.5,
        distinct_memory_configs=37,
        model_seconds_per_pair=2.0,
    )
    ours = micro_arch_independent_cost(
        workloads, configs, instructions,
        profiling_mips=6.0,
        model_seconds_per_pair=5.0,
    )
    return sim, interval, ours


def test_speedup_cost_model(benchmark):
    sim, interval, ours = benchmark.pedantic(run_experiment, rounds=1,
                                             iterations=1)

    vs_sim = sim.seconds / ours.seconds
    vs_interval = interval.seconds / ours.seconds
    lines = ["E30 -- evaluation cost (29 workloads x 243 configs x 1B "
             "instructions)",
             f"detailed simulation:        {sim.days:8.1f} days   "
             f"(paper: ~150 days)",
             f"classic interval model:     {interval.hours:8.1f} hours  "
             f"(paper: ~200 hours)",
             f"micro-arch independent:     {ours.hours:8.1f} hours  "
             f"(paper: ~11.5 hours)",
             f"speedup vs simulation:      {vs_sim:8.0f}x       "
             f"(paper: ~315x)",
             f"speedup vs interval model:  {vs_interval:8.1f}x       "
             f"(paper: ~18x)"]
    write_table("E30_speedup", lines)

    # Shape: orders of magnitude reproduce.
    assert 100 < vs_sim < 2000
    assert 3 < vs_interval < 60
    assert ours.hours < 24
