"""E08 -- Fig 4.4: cold vs capacity LLC misses, with and without warmup.

Paper shape: without cache warmup a large share of misses are cold; a
warmup phase shifts the cold/capacity ratio toward capacity for most
benchmarks (though not all -- cactusADM/mcf/milc keep many cold misses).
"""

from conftest import get_trace, write_table

from repro.caches.cache import default_hierarchy

WORKLOADS = ["libquantum", "mcf", "milc", "gcc", "bzip2", "gamess",
             "omnetpp", "bwaves"]


def miss_breakdown(trace, warmup_fraction=0.0):
    hierarchy = default_hierarchy()
    split = int(len(trace) * warmup_fraction)
    for index, instr in enumerate(trace):
        if index == split:
            hierarchy.reset_stats()
        if instr.is_mem:
            hierarchy.access(instr.addr, is_write=instr.is_store)
    llc = hierarchy.llc.stats
    cold = llc.load_cold_misses + llc.store_cold_misses
    total = llc.misses
    return cold, max(total - cold, 0), total


def run_experiment():
    rows = {}
    for name in WORKLOADS:
        trace = get_trace(name)
        rows[name] = (
            miss_breakdown(trace, warmup_fraction=0.0),
            miss_breakdown(trace, warmup_fraction=0.5),
        )
    return rows


def test_fig4_4_cold_vs_capacity(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E08 / Fig 4.4 -- cold vs capacity LLC misses "
             "(no warmup | 50% warmup)",
             f"{'benchmark':<12s} {'cold':>7s} {'cap':>7s} | "
             f"{'cold':>7s} {'cap':>7s}"]
    improved = 0
    measurable = 0
    for name, ((cold0, cap0, tot0), (cold1, cap1, tot1)) in rows.items():
        lines.append(
            f"{name:<12s} {cold0:7d} {cap0:7d} | {cold1:7d} {cap1:7d}"
        )
        if tot0 > 20 and tot1 > 0:
            measurable += 1
            fraction0 = cold0 / tot0
            fraction1 = cold1 / tot1
            if fraction1 <= fraction0 + 1e-9:
                improved += 1
    write_table("E08_fig4_4", lines)

    # Shape: warmup reduces (or keeps) the cold fraction for most
    # benchmarks; cold misses exist without warmup.
    assert measurable >= 4
    assert improved >= measurable * 0.6
    assert any(r[0][0] > 0 for r in rows.values())
