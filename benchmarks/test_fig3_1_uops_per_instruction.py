"""E01 -- Fig 3.1: micro-operations per instruction, per benchmark.

Paper shape: ratios between ~1.07 (lbm) and ~1.38 (GemsFDTD); the spread
motivates counting work in uops rather than instructions (§3.2).
"""

from conftest import SHORT_TRACE_LENGTH, get_trace, write_table

from repro.workloads import workload_names


def compute_ratios():
    return {
        name: get_trace(name, SHORT_TRACE_LENGTH).stats()
        .uops_per_instruction
        for name in workload_names()
    }


def test_fig3_1_uops_per_instruction(benchmark):
    ratios = benchmark.pedantic(compute_ratios, rounds=1, iterations=1)

    lines = ["E01 / Fig 3.1 -- micro-operations per instruction",
             f"{'benchmark':<14s} uops/instr"]
    for name, ratio in sorted(ratios.items()):
        lines.append(f"{name:<14s} {ratio:10.3f}")
    spread = max(ratios.values()) - min(ratios.values())
    lines.append(f"{'min':<14s} {min(ratios.values()):10.3f}")
    lines.append(f"{'max':<14s} {max(ratios.values()):10.3f}")
    write_table("E01_fig3_1", lines)

    # Shape assertions: every benchmark cracks to >= 1 uop/instruction,
    # stays below 1.5, and the suite shows a meaningful spread as in the
    # paper (lbm 1.07 vs GemsFDTD 1.38).
    assert all(1.0 <= r <= 1.5 for r in ratios.values())
    assert spread > 0.05
