"""E18 -- Table 6.3 + Fig 6.5/6.6: performance accuracy across the
design space.

Paper shape: over 243 cores x 29 benchmarks the model predicts CPI with
9.3% average error and preserves per-benchmark performance trends.  We
evaluate a 27-core slice x 3 representative benchmarks against the
simulator and additionally verify the predicted-vs-simulated correlation
(the Fig 6.6 scatter).
"""

from conftest import get_space_data, write_table

import numpy as np


def run_experiment():
    return get_space_data()


def test_fig6_5_design_space_perf(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E18 / Fig 6.5+6.6 -- design space performance accuracy "
             "(27 cores x 3 workloads)"]
    all_errors = []
    for name, rows in data.items():
        errors = [
            abs(result.cpi - sim.cpi) / sim.cpi
            for _, sim, result in rows
        ]
        sims = np.array([sim.cpi for _, sim, _ in rows])
        models = np.array([result.cpi for _, _, result in rows])
        correlation = float(np.corrcoef(sims, models)[0, 1])
        all_errors.extend(errors)
        lines.append(
            f"{name:<12s} mean err {np.mean(errors):6.1%}  "
            f"max err {np.max(errors):6.1%}  corr {correlation:5.2f}"
        )
        assert correlation > 0.7, name
    mean_error = float(np.mean(all_errors))
    lines.append(f"OVERALL mean |CPI error|: {mean_error:.1%}  "
                 f"(paper design-space figure: 9.3%)")
    write_table("E18_fig6_5", lines)

    assert mean_error < 0.30
