"""E05 -- Fig 3.9 + Fig 3.10: the linear entropy<->missrate fit and its
accuracy across five predictors.

Paper shape: missrate correlates linearly with linear branch entropy; the
trained model predicts per-application MPKI within ~1 MPKI on average for
GAg/GAp/PAp/gshare/tournament.
"""

import random

from conftest import get_trace, write_table

from repro.frontend.entropy import (
    profile_branch_entropy,
    train_entropy_model,
)
from repro.frontend.predictors import make_predictor, simulate_predictor
from repro.isa import Instruction, MacroOp
from repro.workloads.trace import Trace

PREDICTORS = ["GAg", "GAp", "PAp", "gshare", "tournament"]
SUITE_SUBSET = ["gcc", "gobmk", "hmmer", "sjeng", "bzip2", "perlbench",
                "h264ref", "mcf"]


def synthetic_branch_traces():
    """Training corpus spanning the entropy range (the >400 experiments)."""
    rng = random.Random(17)
    traces = []
    for p in (0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5):
        outcomes = [rng.random() < p for _ in range(4000)]
        traces.append(Trace([
            Instruction(pc=0x100, op=MacroOp.BRANCH, taken=t)
            for t in outcomes
        ], name=f"rand{p}"))
    for period in (2, 3, 5, 8):
        outcomes = [i % period == 0 for i in range(4000)]
        traces.append(Trace([
            Instruction(pc=0x200, op=MacroOp.BRANCH, taken=t)
            for t in outcomes
        ], name=f"per{period}"))
    return traces


def run_experiment():
    training = synthetic_branch_traces()
    rows = {}
    for predictor_name in PREDICTORS:
        model = train_entropy_model(predictor_name, training)
        mpki_errors = []
        for workload in SUITE_SUBSET:
            trace = get_trace(workload)
            branches, misses = simulate_predictor(
                make_predictor(predictor_name), trace
            )
            if branches == 0:
                continue
            profile = profile_branch_entropy(trace)
            predicted_rate = model.predict_from_profile(profile)
            actual_mpki = 1000.0 * misses / len(trace)
            predicted_mpki = (
                1000.0 * predicted_rate * branches / len(trace)
            )
            mpki_errors.append(abs(predicted_mpki - actual_mpki))
        rows[predictor_name] = (model, mpki_errors)
    return rows


def test_fig3_9_10_branch_entropy(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E05 / Fig 3.9+3.10 -- linear branch entropy model",
             f"{'predictor':<12s} {'slope':>7s} {'intcpt':>7s} {'R2':>6s} "
             f"{'mean |MPKI err|':>16s}"]
    for name, (model, errors) in rows.items():
        mean_error = sum(errors) / len(errors)
        lines.append(
            f"{name:<12s} {model.slope:7.3f} {model.intercept:7.3f} "
            f"{model.r_squared:6.2f} {mean_error:16.2f}"
        )
    write_table("E05_fig3_9_10", lines)

    # Shape: positive slope and decent linear fit for every predictor
    # (Fig 3.9); MPKI errors stay in the paper's few-MPKI band (Fig 3.10).
    for name, (model, errors) in rows.items():
        assert model.slope > 0.1, name
        assert model.r_squared > 0.5, name
        assert sum(errors) / len(errors) < 12.0, name
