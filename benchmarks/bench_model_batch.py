#!/usr/bin/env python3
"""Benchmark: batched model evaluation — vectorized vs scalar reference.

Acceptance check for the batched (structure-of-arrays) model backend on
a >= 10k-configuration design grid:

* ``AnalyticalModel.predict_batch`` with ``backend="batch"`` must be at
  least **5x faster** than the retained scalar prediction loop over the
  full grid (fresh model + ``ModelCache`` per run, best of three);
* the results must be **bitwise identical**: every CPI stack, window
  breakdown, activity vector, power stack and energy/EDP/ED2P scalar,
  plus the set of :class:`ModelCache` keys both backends leave behind,
  and the DesignPoint stream a :class:`SweepEngine` produces from each
  backend over a grid slice.

Results land in ``benchmarks/results/E34_model_batch.txt`` and the
machine-readable perf-trajectory record in ``BENCH_model_batch.json``
at the repository root (all ``bench_*`` scripts put their
``BENCH_*.json`` there).

Run:  PYTHONPATH=src python benchmarks/bench_model_batch.py
      PYTHONPATH=src python benchmarks/bench_model_batch.py --repeats 5
"""

import argparse
import gc
import itertools
import json
import os
import platform
import sys
import time

import numpy as np

from repro.core import AnalyticalModel, ModelCache, design_space
from repro.explore.engine import SweepEngine
from repro.profiler import SamplingConfig, profile_application
from repro.workloads import generate_trace, make_workload

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
WORKLOAD = "gcc"
INSTRUCTIONS = 20_000
MICRO_TRACE = 1_000
WINDOW = 4_000
REQUIRED_SPEEDUP = 5.0

#: Benchmark grid (Table 6.3 axes widened with L2/MSHR and the DVFS
#: frequencies of Table 7.2): 3*5*3*4*7*3*3 = 11,340 configurations.
GRID_AXES = {
    "dispatch_width": (2, 4, 6),
    "rob_size": (32, 64, 128, 256, 512),
    "l1d_kb": (16, 32, 64),
    "llc_mb": (1, 2, 4, 8),
    "frequency_ghz": (1.2, 1.6, 2.0, 2.4, 2.66, 3.0, 3.4),
    "l2_kb": (128, 256, 512),
    "mshr_entries": (4, 8, 16),
}


def results_identical(a, b) -> bool:
    """Bitwise comparison of two ModelResult lists, key order included."""
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        pa, pb = ra.performance, rb.performance
        if pa != pb or list(pa.stack) != list(pb.stack):
            return False
        if ra.activity != rb.activity or ra.power != rb.power:
            return False
        if (list(ra.power.static) != list(rb.power.static)
                or list(ra.power.dynamic) != list(rb.power.dynamic)):
            return False
        if (ra.energy_joules, ra.edp, ra.ed2p) != (
                rb.energy_joules, rb.edp, rb.ed2p):
            return False
    return True


def points_identical(a, b) -> bool:
    """Bitwise comparison of two DesignPoint streams."""
    return (len(a) == len(b)
            and all(pa.workload == pb.workload
                    and pa.config.name == pb.config.name
                    and results_identical([pa.result], [pb.result])
                    for pa, pb in zip(a, b)))


def timed_run(profile, configs, backend: str, repeats: int):
    """Best-of-N wall time for one backend; returns (seconds, results).

    Each repeat evaluates on a *fresh* model + cache (cold memo, the
    sweep-engine situation) with a collected heap, and drops its
    results before the next so GC pressure from kept objects cannot
    pollute later repeats.
    """
    best = float("inf")
    kept = None
    for repeat in range(repeats):
        model = AnalyticalModel(cache=ModelCache())
        gc.collect()
        t0 = time.perf_counter()
        results = model.predict_batch(profile, configs, backend=backend)
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        if kept is None:
            kept = results
        else:
            del results
    return best, kept


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per backend (best counts)")
    args = parser.parse_args()

    trace = generate_trace(make_workload(WORKLOAD),
                           max_instructions=INSTRUCTIONS)
    profile = profile_application(
        trace, SamplingConfig(MICRO_TRACE, WINDOW))
    configs = design_space(GRID_AXES)
    assert len(configs) >= 10_000, "grid too small for the gate"

    lines = [
        f"E34: batched vs scalar model, {WORKLOAD} x "
        f"{INSTRUCTIONS} instructions (micro-trace {MICRO_TRACE} / "
        f"window {WINDOW}), {len(configs)} configurations",
        f"{'backend':>8s} {'seconds':>9s}  (best of {args.repeats})",
    ]

    t_scalar, scalar_results = timed_run(profile, configs, "scalar",
                                         args.repeats)
    t_batch, batch_results = timed_run(profile, configs, "batch",
                                       args.repeats)
    lines.append(f"{'scalar':>8s} {t_scalar:>9.3f}")
    lines.append(f"{'batch':>8s} {t_batch:>9.3f}")
    speedup = t_scalar / t_batch

    identical = results_identical(scalar_results, batch_results)
    del scalar_results, batch_results

    # Both backends must leave a ModelCache answering the same queries.
    scalar_model = AnalyticalModel(cache=ModelCache())
    batch_model = AnalyticalModel(cache=ModelCache())
    probe = configs[::97]
    scalar_model.predict_batch(profile, probe, backend="scalar")
    batch_model.predict_batch(profile, probe, backend="batch")
    caches_equal = (set(scalar_model.cache._memo)
                    == set(batch_model.cache._memo))

    # And a SweepEngine must stream identical DesignPoints either way.
    slice_configs = configs[::23]
    scalar_points = SweepEngine(workers=1, backend="scalar").sweep(
        [profile], slice_configs)[WORKLOAD]
    batch_points = SweepEngine(workers=1, batch_size=64,
                               backend="batch").sweep(
        [profile], slice_configs)[WORKLOAD]
    sweep_equal = points_identical(scalar_points, batch_points)

    lines.append(
        f"speedup: {speedup:.2f}x (gate >= {REQUIRED_SPEEDUP:.0f}x)")
    lines.append(
        f"bitwise identical results: {'yes' if identical else 'NO'}")
    lines.append(
        f"identical ModelCache key sets ({len(probe)} probe configs): "
        f"{'yes' if caches_equal else 'NO'}")
    lines.append(
        f"identical SweepEngine DesignPoints ({len(slice_configs)} "
        f"configs, chunk 64): {'yes' if sweep_equal else 'NO'}")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(text)
    with open(os.path.join(RESULTS_DIR, "E34_model_batch.txt"),
              "w") as f:
        f.write(text + "\n")

    record = {
        "experiment": "E34_model_batch",
        "workload": WORKLOAD,
        "instructions": INSTRUCTIONS,
        "sampling": {"micro_trace_length": MICRO_TRACE,
                     "window_length": WINDOW},
        "configurations": len(configs),
        "required_speedup": REQUIRED_SPEEDUP,
        "speedup": round(speedup, 3),
        "scalar_seconds": round(t_scalar, 6),
        "batch_seconds": round(t_batch, 6),
        "repeats": args.repeats,
        "bitwise_identical": identical,
        "cache_keys_identical": caches_equal,
        "sweep_points_identical": sweep_equal,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
    }
    with open(os.path.join(ROOT, "BENCH_model_batch.json"),
              "w") as f:
        json.dump(record, f, indent=2)

    if not (identical and caches_equal and sweep_equal):
        print("FAIL: backends diverged", file=sys.stderr)
        return 1
    if speedup < REQUIRED_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x < "
              f"{REQUIRED_SPEEDUP:.0f}x", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
