"""E25 -- Table 7.1: optimizing performance under power constraints.

Paper shape: for each power budget the model picks the fastest feasible
design; relaxing the budget never yields a slower pick.
"""

from conftest import get_space_data, write_table

from repro.explore.dvfs import best_under_power_cap


def run_experiment():
    data = get_space_data()
    rows = {}
    for workload, points in data.items():
        candidates = [(config, result) for config, _, result in points]
        watts = sorted(result.power_watts for _, result in candidates)
        caps = [watts[len(watts) // 4], watts[len(watts) // 2], watts[-1]]
        picks = []
        for cap in caps:
            chosen = best_under_power_cap(candidates, cap)
            picks.append((cap, chosen))
        rows[workload] = picks
    return rows


def test_table7_1_power_constrained(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E25 / Table 7.1 -- performance under power constraints",
             f"{'workload':<12s} {'cap (W)':>8s} {'chosen core':<28s} "
             f"{'seconds':>10s} {'watts':>7s}"]
    for workload, picks in rows.items():
        previous_seconds = None
        for cap, chosen in picks:
            assert chosen is not None
            config, result = chosen
            lines.append(
                f"{workload:<12s} {cap:8.2f} {config.name:<28s} "
                f"{result.seconds:10.3e} {result.power_watts:7.2f}"
            )
            assert result.power_watts <= cap + 1e-9
            if previous_seconds is not None:
                # A looser budget can only help.
                assert result.seconds <= previous_seconds + 1e-12
            previous_seconds = result.seconds
    write_table("E25_table7_1", lines)
