"""E13 -- Fig 5.5: dependence-chain error due to micro-trace sampling.

Paper shape: AP and CP sampling errors are negligible (~0.4%); ABP is
noisier (~4% average with outliers) because micro-traces contain few
branches -- but the branch component is small, so this is acceptable.
"""

from conftest import SAMPLING, get_trace, write_table

from repro.profiler.dependences import (
    DependenceChains,
    profile_dependence_chains,
)
from repro.profiler.sampling import iter_micro_traces
from repro.workloads import workload_names

WORKLOADS = workload_names()[::3]
GRID = (64, 128, 192)


def run_experiment():
    rows = {}
    for name in WORKLOADS:
        trace = get_trace(name)
        full = profile_dependence_chains(trace.instructions, grid=GRID)
        sampled_parts = []
        weights = []
        for _, micro in iter_micro_traces(trace.instructions, SAMPLING):
            sampled_parts.append(
                profile_dependence_chains(micro, grid=GRID)
            )
            weights.append(len(micro))
        sampled = DependenceChains(grid=GRID)
        sampled.merge_weighted(sampled_parts, weights)
        errors = {}
        for stat in ("ap", "abp", "cp"):
            reference = getattr(full, stat).at(128)
            estimate = getattr(sampled, stat).at(128)
            errors[stat] = (
                abs(estimate - reference) / reference if reference else 0.0
            )
        rows[name] = errors
    return rows


def test_fig5_5_chain_sampling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E13 / Fig 5.5 -- dependence chain sampling error (ROB=128)",
             f"{'benchmark':<14s} {'AP':>8s} {'ABP':>8s} {'CP':>8s}"]
    for name, errors in sorted(rows.items()):
        lines.append(
            f"{name:<14s} {errors['ap']:8.2%} {errors['abp']:8.2%} "
            f"{errors['cp']:8.2%}"
        )
    means = {
        stat: sum(r[stat] for r in rows.values()) / len(rows)
        for stat in ("ap", "abp", "cp")
    }
    lines.append(
        f"{'MEAN':<14s} {means['ap']:8.2%} {means['abp']:8.2%} "
        f"{means['cp']:8.2%}"
    )
    write_table("E13_fig5_5", lines)

    # Shape: AP/CP sampling errors small; ABP allowed to be noisier
    # (the thesis' own finding).
    assert means["ap"] < 0.10
    assert means["cp"] < 0.10
    assert means["abp"] < 0.30
