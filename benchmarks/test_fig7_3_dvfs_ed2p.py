"""E26 -- Table 7.2 + Fig 7.3: DVFS exploration with ED^2P.

Paper shape: the model's ED^2P-vs-frequency curve matches the simulator's
well enough to pick the same (or an adjacent) optimal operating point.
"""

from conftest import SHORT_TRACE_LENGTH, get_profile, get_trace, write_table

from repro.core import nehalem
from repro.core.machine import dvfs_points
from repro.core.power import PowerModel
from repro.explore.dvfs import config_at, explore_dvfs, optimal_ed2p
from repro.simulator import simulate

WORKLOADS = ["gamess", "gcc"]


def simulated_ed2p(trace, config):
    sim = simulate(trace, config)
    backend = PowerModel(config)
    return backend.ed2p(sim.activity)


def run_experiment():
    base = nehalem()
    points = dvfs_points()
    rows = {}
    for name in WORKLOADS:
        trace = get_trace(name, SHORT_TRACE_LENGTH)
        profile = get_profile(name, SHORT_TRACE_LENGTH)
        model_results = explore_dvfs(profile, base, points)
        sim_values = [
            simulated_ed2p(trace, config_at(base, point))
            for point in points
        ]
        rows[name] = (points, model_results, sim_values)
    return rows


def test_fig7_3_dvfs_ed2p(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["E26 / Fig 7.3 -- ED^2P across DVFS points (model vs sim)"]
    for name, (points, model_results, sim_values) in rows.items():
        lines.append(f"-- {name}")
        lines.append(f"{'GHz':>6s} {'model ED2P':>12s} {'sim ED2P':>12s}")
        for point, result, sim_value in zip(points, model_results,
                                            sim_values):
            lines.append(
                f"{point.frequency_ghz:6.2f} {result.ed2p:12.3e} "
                f"{sim_value:12.3e}"
            )
        best = optimal_ed2p(model_results)
        model_best = best.point.frequency_ghz
        sim_best = points[sim_values.index(min(sim_values))].frequency_ghz
        # Regret: how much worse (in simulated ED^2P) is the model's pick
        # than the simulator's optimum?  The curves are flat-bottomed, so
        # regret is the meaningful metric, not exact argmin agreement.
        pick_index = [p.frequency_ghz for p in points].index(model_best)
        regret = sim_values[pick_index] / min(sim_values) - 1.0
        lines.append(f"model optimum {model_best:.2f} GHz, "
                     f"sim optimum {sim_best:.2f} GHz, "
                     f"regret {regret:+.1%}")
        assert regret < 0.25, name
    write_table("E26_fig7_3", lines)
